// Negative-compilation probe: discarding a by-value Status must be a compile
// error thanks to the class-level [[nodiscard]] on qpwm::Status (enforced as
// -Werror=unused-result on this target). The `nodiscard_negcompile` ctest
// entry builds this file and passes only when the build FAILS. It is never
// part of the normal build.
#include "qpwm/util/status.h"

namespace qpwm {

Status Fallible() { return Status::Internal("probe"); }

void Discard() {
  Fallible();  // qpwm-lint: allow(discarded-status) -- the point of the probe
}

}  // namespace qpwm
