// Self-tests for the qpwm_lint library: tokenizer behavior, each rule's
// positive and negative cases, pragma waiving, and the cross-file scoping
// (status_apis is global, unordered names are include-scoped).
//
// The fixture files in tests/lint_fixtures/ are exercised end-to-end through
// the ctest entries in tests/CMakeLists.txt (each bad fixture must fail
// `qpwm_lint --strict`, the good one must pass); these tests pin the library
// semantics those gates rely on.
#include "lint.h"

#include <gtest/gtest.h>

namespace qpwm::lint {
namespace {

// Lints `src` as a standalone file: context built from this file only.
std::vector<Finding> Analyze(const std::string& path, std::string_view src) {
  FileScan scan = ScanSource(path, src);
  LintContext ctx;
  CollectContext(scan, ctx);
  std::vector<Finding> out;
  AnalyzeFile(scan, ctx, out);
  return out;
}

// Lints `src` with extra context files (path, source) collected first.
std::vector<Finding> AnalyzeWith(
    const std::vector<std::pair<std::string, std::string>>& context_files,
    const std::string& path, std::string_view src) {
  LintContext ctx;
  for (const auto& [p, s] : context_files) {
    FileScan scan = ScanSource(p, s);
    CollectContext(scan, ctx);
  }
  FileScan scan = ScanSource(path, src);
  CollectContext(scan, ctx);
  std::vector<Finding> out;
  AnalyzeFile(scan, ctx, out);
  return out;
}

bool HasRule(const std::vector<Finding>& fs, std::string_view rule) {
  for (const Finding& f : fs) {
    if (f.rule == rule) return true;
  }
  return false;
}

// --- Tokenizer ---------------------------------------------------------------

TEST(LintLexer, StringsCommentsAndPreprocessorProduceNoTokens) {
  FileScan scan = ScanSource("a.cc",
                             "#include <x>\n"
                             "// abort();\n"
                             "/* throw; */\n"
                             "const char* s = \"abort(); throw\";\n"
                             "char c = '\\'';\n");
  for (const Token& t : scan.tokens) {
    EXPECT_NE(t.text, "abort") << "banned name leaked from line " << t.line;
    EXPECT_NE(t.text, "throw");
  }
}

TEST(LintLexer, RawStringsAreInvisible) {
  FileScan scan = ScanSource("a.cc", "auto s = R\"(rand() throw)\";\nint z;\n");
  for (const Token& t : scan.tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "throw");
  }
  // Line counting survives the raw string.
  EXPECT_EQ(scan.tokens.back().line, 2);
}

TEST(LintLexer, AttributeIsASingleToken) {
  FileScan scan = ScanSource("a.h", "[[nodiscard]] Status F();\n");
  ASSERT_FALSE(scan.tokens.empty());
  EXPECT_EQ(scan.tokens[0].kind, Token::Kind::kAttr);
  EXPECT_EQ(scan.tokens[0].text, "nodiscard");
}

TEST(LintLexer, PragmaRegistersRulesForItsLine) {
  FileScan scan = ScanSource(
      "a.cc", "int x;\n// qpwm-lint: allow(bare-throw, unordered-iter) -- why\n");
  ASSERT_TRUE(scan.allows.count(2));
  EXPECT_TRUE(scan.allows[2].count("bare-throw"));
  EXPECT_TRUE(scan.allows[2].count("unordered-iter"));
}

TEST(LintLexer, QuotedIncludesAreRecorded) {
  FileScan scan = ScanSource("a.cc",
                             "#include \"qpwm/util/status.h\"\n"
                             "#include <vector>\n");
  ASSERT_EQ(scan.includes.size(), 1u);
  EXPECT_EQ(scan.includes[0], "qpwm/util/status.h");
}

// --- error-discipline --------------------------------------------------------

TEST(LintRules, DiscardedStatusCallFlagged) {
  auto fs = Analyze("a.cc",
                    "Status Do();\n"
                    "void F() { Do(); }\n");
  EXPECT_TRUE(HasRule(fs, kDiscardedStatus));
}

TEST(LintRules, VoidCastStillFlagged) {
  auto fs = Analyze("a.cc",
                    "Status Do();\n"
                    "void F() { (void)Do(); }\n");
  EXPECT_TRUE(HasRule(fs, kDiscardedStatus));
}

TEST(LintRules, HandledStatusNotFlagged) {
  auto fs = Analyze("a.cc",
                    "Status Do();\n"
                    "Status F() {\n"
                    "  Status s = Do();\n"
                    "  if (!s.ok()) return s;\n"
                    "  return Do();\n"
                    "}\n");
  EXPECT_FALSE(HasRule(fs, kDiscardedStatus));
}

TEST(LintRules, StatusApisAreGlobalAcrossFiles) {
  auto fs = AnalyzeWith({{"lib.h", "Result<int> Parse(int x);\n"}}, "use.cc",
                        "void F() { Parse(3); }\n");
  EXPECT_TRUE(HasRule(fs, kDiscardedStatus));
}

TEST(LintRules, MemberChainFinalCalleeDecides) {
  // The chain ends in a Status-returning member: flagged.
  auto fs = AnalyzeWith({{"lib.h", "Status Commit();\n"}}, "use.cc",
                        "void F(Txn& t) { t.handle().Commit(); }\n");
  EXPECT_TRUE(HasRule(fs, kDiscardedStatus));
  // Same chain but the final member is not fallible: clean.
  auto clean = AnalyzeWith({{"lib.h", "Status Commit();\n"}}, "use.cc",
                           "void F(Txn& t) { t.Commit().IgnoreError(); }\n");
  EXPECT_FALSE(HasRule(clean, kDiscardedStatus));
}

TEST(LintRules, NodiscardRequiredInHeadersOnly) {
  EXPECT_TRUE(HasRule(Analyze("a.h", "Status F();\n"), kNodiscardStatus));
  EXPECT_FALSE(
      HasRule(Analyze("a.h", "[[nodiscard]] Status F();\n"), kNodiscardStatus));
  EXPECT_FALSE(HasRule(Analyze("a.cc", "Status F() { return Status(); }\n"),
                       kNodiscardStatus));
}

TEST(LintRules, NodiscardSeesThroughSpecifiers) {
  EXPECT_TRUE(
      HasRule(Analyze("a.h", "static inline Status F();\n"), kNodiscardStatus));
  EXPECT_FALSE(
      HasRule(Analyze("a.h", "[[nodiscard]] static Result<int> F();\n"),
              kNodiscardStatus));
}

TEST(LintRules, RawStatusOutsideFactoriesFlagged) {
  EXPECT_TRUE(HasRule(
      Analyze("a.cc", "Status F() { return Status(StatusCode::kInternal, \"x\"); }\n"),
      kRawStatus));
  // The factory home is exempt.
  EXPECT_FALSE(HasRule(
      Analyze("src/qpwm/util/status.h",
              "Status F() { return Status(StatusCode::kInternal, \"x\"); }\n"),
      kRawStatus));
  // Factory calls are fine anywhere.
  EXPECT_FALSE(HasRule(
      Analyze("a.cc", "Status F() { return Status::Internal(\"x\"); }\n"),
      kRawStatus));
}

TEST(LintRules, AbortAndThrowFlagged) {
  EXPECT_TRUE(HasRule(Analyze("a.cc", "void F() { abort(); }\n"), kBareAbort));
  EXPECT_TRUE(HasRule(Analyze("a.cc", "void F() { throw 1; }\n"), kBareThrow));
  // check.h is the sanctioned abort site.
  EXPECT_FALSE(HasRule(
      Analyze("src/qpwm/util/check.h", "void F() { std::abort(); }\n"),
      kBareAbort));
}

// --- determinism -------------------------------------------------------------

TEST(LintRules, EntropySourcesFlaggedOutsideUtilRandom) {
  EXPECT_TRUE(HasRule(Analyze("a.cc", "std::mt19937 g(1);\n"),
                      kNondeterministicRandom));
  EXPECT_TRUE(HasRule(Analyze("a.cc", "int x = rand();\n"),
                      kNondeterministicRandom));
  EXPECT_FALSE(HasRule(Analyze("src/qpwm/util/random.h", "std::mt19937 g(1);\n"),
                       kNondeterministicRandom));
  // Member calls named rand() belong to the seeded Rng, not libc.
  EXPECT_FALSE(HasRule(Analyze("a.cc", "int x = rng.rand();\n"),
                       kNondeterministicRandom));
}

TEST(LintRules, UnorderedIterFlaggedForOwnAndIncludedNames) {
  const char* decl_and_loop =
      "std::unordered_map<int, int> m_;\n"
      "void F() { for (const auto& kv : m_) { (void)kv; } }\n";
  EXPECT_TRUE(HasRule(Analyze("a.cc", decl_and_loop), kUnorderedIter));

  // Declared in a header the .cc includes: still visible.
  auto fs = AnalyzeWith(
      {{"src/qpwm/foo/bar.h", "std::unordered_map<int, int> m_;\n"}},
      "src/qpwm/foo/bar.cc",
      "#include \"qpwm/foo/bar.h\"\n"
      "void F() { for (const auto& kv : m_) { (void)kv; } }\n");
  EXPECT_TRUE(HasRule(fs, kUnorderedIter));

  // Same variable name declared in an unrelated, un-included file: clean.
  auto clean = AnalyzeWith(
      {{"src/qpwm/foo/bar.h", "std::unordered_map<int, int> m_;\n"}},
      "src/qpwm/other/baz.cc",
      "std::vector<int> m_;\n"
      "void F() { for (const auto& kv : m_) { (void)kv; } }\n");
  EXPECT_FALSE(HasRule(clean, kUnorderedIter));
}

TEST(LintRules, NestedUnorderedInsideOrderedNotFlagged) {
  // The >> closes both templates; `groups` is a vector, iteration is fine.
  auto fs = Analyze("a.cc",
                    "std::vector<std::unordered_set<int>> groups;\n"
                    "void F() { for (const auto& g : groups) { (void)g; } }\n");
  EXPECT_FALSE(HasRule(fs, kUnorderedIter));
}

TEST(LintRules, AllowPragmaWaivesOnSameAndNextLine) {
  auto fs = Analyze("a.cc",
                    "std::unordered_map<int, int> m_;\n"
                    "void F() {\n"
                    "  // qpwm-lint: allow(unordered-iter) -- reduction\n"
                    "  for (const auto& kv : m_) { (void)kv; }\n"
                    "}\n");
  EXPECT_FALSE(HasRule(fs, kUnorderedIter));
}

// --- parallel hygiene --------------------------------------------------------

TEST(LintRules, ParallelBodyMutatingOuterStateFlagged) {
  auto fs = Analyze("a.cc",
                    "void F(std::vector<int>& xs) {\n"
                    "  int total = 0;\n"
                    "  ParallelFor(xs.size(), [&](size_t i) { total += xs[i]; });\n"
                    "}\n");
  EXPECT_TRUE(HasRule(fs, kParallelMutation));
}

TEST(LintRules, ParallelMutatorMemberCallFlagged) {
  auto fs = Analyze("a.cc",
                    "void F(size_t n, std::vector<int>& out) {\n"
                    "  ParallelFor(n, [&](size_t i) { out.push_back(int(i)); });\n"
                    "}\n");
  EXPECT_TRUE(HasRule(fs, kParallelMutation));
}

TEST(LintRules, PerIndexSlotWritesAreSanctioned) {
  auto fs = Analyze("a.cc",
                    "void F(size_t n, std::vector<int>& out) {\n"
                    "  ParallelFor(n, [&](size_t i) { out[i] = int(i); });\n"
                    "}\n");
  EXPECT_FALSE(HasRule(fs, kParallelMutation));
}

TEST(LintRules, LambdaLocalsIncludingCommaChainsAreFine) {
  auto fs = Analyze("a.cc",
                    "void F(size_t n) {\n"
                    "  ParallelFor(n, [&](size_t i) {\n"
                    "    size_t a = 0, b = 0;\n"
                    "    auto c = i;\n"
                    "    a += i; b++; ++c;\n"
                    "  });\n"
                    "}\n");
  EXPECT_FALSE(HasRule(fs, kParallelMutation));
}

TEST(LintRules, LegacyTupleVectorFlaggedInLibraryCode) {
  auto fs = Analyze("src/qpwm/core/foo.cc",
                    "void F() { std::vector<Tuple> rows; }\n");
  EXPECT_TRUE(HasRule(fs, kLegacyTupleVector));
  // Member storage materializes too.
  fs = Analyze("src/qpwm/core/foo.h",
               "struct C { std::vector<Tuple> rows_; };\n");
  EXPECT_TRUE(HasRule(fs, kLegacyTupleVector));
  // Returning a materialized answer set is the query API contract.
  fs = Analyze("src/qpwm/core/foo.h", "std::vector<Tuple> AllRows();\n");
  EXPECT_FALSE(HasRule(fs, kLegacyTupleVector));
}

TEST(LintRules, LegacyTupleVectorScopeAndBorrows) {
  // structure/ is the sanctioned home; tests/bench are out of scope.
  auto fs = Analyze("src/qpwm/structure/structure.cc",
                    "void F() { std::vector<Tuple> rows; }\n");
  EXPECT_FALSE(HasRule(fs, kLegacyTupleVector));
  fs = Analyze("tests/foo_test.cc", "void F() { std::vector<Tuple> rows; }\n");
  EXPECT_FALSE(HasRule(fs, kLegacyTupleVector));
  // Borrowing by reference and nested template arguments do not match.
  fs = Analyze("src/qpwm/core/foo.cc",
               "void F(const std::vector<Tuple>& rows);\n"
               "std::map<int, std::vector<Tuple>>* g;\n");
  EXPECT_FALSE(HasRule(fs, kLegacyTupleVector));
  // Pragma waives a deliberate cold-path materialization.
  fs = Analyze("src/qpwm/core/foo.cc",
               "// qpwm-lint: allow(legacy-tuple-vector) — cold path\n"
               "std::vector<Tuple> snapshot;\n");
  EXPECT_FALSE(HasRule(fs, kLegacyTupleVector));
}

// --- classification ----------------------------------------------------------

TEST(LintRules, AdvisorySplitMatchesRuleCatalog) {
  EXPECT_TRUE(IsAdvisoryRule(kUnorderedIter));
  EXPECT_TRUE(IsAdvisoryRule(kParallelMutation));
  EXPECT_TRUE(IsAdvisoryRule(kLegacyTupleVector));
  EXPECT_FALSE(IsAdvisoryRule(kDiscardedStatus));
  EXPECT_FALSE(IsAdvisoryRule(kBareThrow));
  EXPECT_EQ(AllRules().size(), 9u);
}

}  // namespace
}  // namespace qpwm::lint
