#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "qpwm/util/bitvec.h"
#include "qpwm/util/hash.h"
#include "qpwm/util/random.h"
#include "qpwm/util/status.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"

namespace qpwm {
namespace {

// --- Status / Result ---------------------------------------------------

TEST(StatusTest, OkIsOk) {
  Status s = Status::OK();
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad epsilon");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad epsilon");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

// --- Rng ----------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 3);
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(17), 17u);
}

TEST(RngTest, UniformInclusiveRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.Uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(9);
  auto sample = rng.SampleWithoutReplacement(50, 20);
  std::set<size_t> set(sample.begin(), sample.end());
  EXPECT_EQ(set.size(), 20u);
  for (size_t s : sample) EXPECT_LT(s, 50u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// --- Hash / PRF ----------------------------------------------------------

TEST(HashTest, SipHashReferenceVector) {
  // Reference test vector from the SipHash paper: key 000102...0f,
  // input 000102...0e -> 0xa129ca6149be45e5.
  PrfKey key{0x0706050403020100ULL, 0x0F0E0D0C0B0A0908ULL};
  unsigned char input[15];
  for (int i = 0; i < 15; ++i) input[i] = static_cast<unsigned char>(i);
  EXPECT_EQ(SipHash24(key, input, sizeof(input)), 0xA129CA6149BE45E5ULL);
}

TEST(HashTest, PrfKeyedDiffers) {
  PrfKey k1{1, 2}, k2{1, 3};
  EXPECT_NE(Prf(k1, "hello"), Prf(k2, "hello"));
}

TEST(HashTest, DeriveGivesIndependentSubkeys) {
  PrfKey k{42, 43};
  PrfKey d1 = k.Derive(1), d2 = k.Derive(2);
  EXPECT_FALSE(d1.k0 == d2.k0 && d1.k1 == d2.k1);
  EXPECT_NE(Prf(d1, "x"), Prf(d2, "x"));
}

TEST(HashTest, HashBytesSpreads) {
  std::unordered_set<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    values.insert(HashBytes(&i, sizeof(i)));
  }
  EXPECT_EQ(values.size(), 1000u);
}

// --- BitVec ---------------------------------------------------------------

TEST(BitVecTest, DefaultAllZero) {
  BitVec v(70);
  EXPECT_EQ(v.size(), 70u);
  EXPECT_EQ(v.Count(), 0u);
  for (size_t i = 0; i < 70; ++i) EXPECT_FALSE(v.Get(i));
}

TEST(BitVecTest, SetGetFlip) {
  BitVec v(100);
  v.Set(0, true);
  v.Set(63, true);
  v.Set(64, true);
  v.Set(99, true);
  EXPECT_EQ(v.Count(), 4u);
  v.Flip(63);
  EXPECT_FALSE(v.Get(63));
  EXPECT_EQ(v.Count(), 3u);
}

TEST(BitVecTest, Uint64RoundTrip) {
  BitVec v = BitVec::FromUint64(0b1011010, 7);
  EXPECT_EQ(v.ToUint64(), 0b1011010u);
  EXPECT_EQ(v.ToString(), "0101101");  // bit 0 first
}

TEST(BitVecTest, StringRoundTrip) {
  BitVec v = BitVec::FromString("0110010011");
  EXPECT_EQ(v.ToString(), "0110010011");
  EXPECT_EQ(v.Count(), 5u);
}

TEST(BitVecTest, HammingDistance) {
  BitVec a = BitVec::FromString("101010");
  BitVec b = BitVec::FromString("100110");
  EXPECT_EQ(a.HammingDistance(b), 2u);
  EXPECT_EQ(a.HammingDistance(a), 0u);
}

TEST(BitVecTest, Equality) {
  EXPECT_EQ(BitVec::FromString("101"), BitVec::FromString("101"));
  EXPECT_NE(BitVec::FromString("101"), BitVec::FromString("100"));
  EXPECT_NE(BitVec::FromString("101"), BitVec::FromString("1010"));
}

TEST(BitVecTest, AllOnesConstructor) {
  BitVec v(67, true);
  EXPECT_EQ(v.Count(), 67u);
}

// --- Strings ----------------------------------------------------------------

TEST(StrTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StrTest, JoinRoundTrip) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, "::"), "x::y::z");
}

TEST(StrTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \n\t"), "hi");
  EXPECT_EQ(StripWhitespace("\r\n"), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StrTest, StrCatMixesTypes) {
  EXPECT_EQ(StrCat("n=", 42, ", p=", 1.5), "n=42, p=1.5");
}

TEST(StrTest, StartsWith) {
  EXPECT_TRUE(StartsWith("P_label", "P_"));
  EXPECT_FALSE(StartsWith("P", "P_"));
}

// --- TextTable ---------------------------------------------------------------

TEST(TableTest, RendersAlignedRows) {
  TextTable t("demo");
  t.SetHeader({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "10000"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 10000 |"), std::string::npos);
}

TEST(TableTest, FmtDouble) {
  EXPECT_EQ(FmtDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FmtDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace qpwm
