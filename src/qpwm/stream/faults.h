// Deterministic fault injection for detect-under-write passes.
//
// Each detection attempt gets a FaultPlan drawn from (seed, attempt index)
// alone, so a fixed-seed soak replays the same faults at any thread count.
// The FaultyAnswerServer realizes the plan at the answer boundary — the only
// surface detection actually touches:
//
//   * epoch loss — the snapshot is yanked mid-pass (a writer superseded it
//     and the deployment reclaimed it): every answer from the loss point on
//     comes back empty and the pass is flagged, so the loop discards it and
//     retries against the next snapshot;
//   * failed batch — one answer round-trip fails transiently (same flagged
//     discard-and-retry semantics, counted separately);
//   * slow batch — a latency penalty in virtual ticks.
//
// Latency is measured in virtual ticks (rows served + penalties), never
// wall-clock, which is what keeps the soak report byte-identical across
// thread counts.
#ifndef QPWM_STREAM_FAULTS_H_
#define QPWM_STREAM_FAULTS_H_

#include <cstdint>
#include <vector>

#include "qpwm/core/answers.h"

namespace qpwm {

struct FaultOptions {
  /// Probability a detection attempt loses its epoch mid-pass.
  double epoch_loss_prob = 0.12;
  /// Probability the attempt's answer batch fails transiently.
  double failed_batch_prob = 0.08;
  /// Probability of a slow answer batch, and its tick penalty range.
  double slow_batch_prob = 0.25;
  uint64_t slow_penalty_min = 200;
  uint64_t slow_penalty_max = 2000;
};

/// The faults one detection attempt will hit.
struct FaultPlan {
  bool lose_epoch = false;
  bool fail_batch = false;
  uint64_t slow_penalty_ticks = 0;
};

/// Pure function of (seed, attempt): the same attempt always hits the same
/// faults. Draw order is fixed (loss, failure, slowness) so adding options
/// later cannot silently reshuffle existing campaigns.
FaultPlan MakeFaultPlan(uint64_t seed, uint64_t attempt_index,
                        const FaultOptions& options);

/// Answer-boundary fault wrapper. Counts virtual ticks (one per answer row
/// plus one per parameter, plus penalties) and realizes the plan. The base
/// server must outlive the wrapper; a wrapper serves exactly one detection
/// attempt (its fault state is monotone, not resettable).
class FaultyAnswerServer : public BatchAnswerServer {
 public:
  FaultyAnswerServer(const AnswerServer& base, const FaultPlan& plan)
      : base_(&base), plan_(plan) {}

  AnswerSet Answer(const Tuple& params) const override;
  std::vector<AnswerSet> AnswerBatch(const std::vector<Tuple>& params) const override;

  /// Virtual serving cost consumed so far.
  uint64_t ticks() const { return ticks_; }
  /// The pass lost its epoch / hit a failed batch; its detection output must
  /// be discarded and the pass retried.
  bool epoch_lost() const { return epoch_lost_; }
  bool batch_failed() const { return batch_failed_; }
  bool faulted() const { return epoch_lost_ || batch_failed_; }

 private:
  /// Charges the per-round-trip cost; returns true when the round trip
  /// should serve real answers.
  bool BeginRoundTrip() const;

  const AnswerServer* base_;
  FaultPlan plan_;
  mutable uint64_t round_trips_ = 0;
  mutable uint64_t ticks_ = 0;
  mutable bool epoch_lost_ = false;
  mutable bool batch_failed_ = false;
};

}  // namespace qpwm

#endif  // QPWM_STREAM_FAULTS_H_
