// Hashing utilities: unkeyed combiners for hash tables / canonical-form
// fingerprints, and SipHash-2-4 as the keyed PRF the watermarking schemes use
// for secret, reproducible selections (Agrawal-Kiernan tuple selection, pair
// ordering). SipHash is implemented from the reference description; it is a
// PRF under a secret 128-bit key, which matches the "limited knowledge"
// attacker assumption.
#ifndef QPWM_UTIL_HASH_H_
#define QPWM_UTIL_HASH_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace qpwm {

/// Mixes a 64-bit value into a running hash (boost::hash_combine style,
/// 64-bit variant).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  seed ^= v + 0x9E3779B97F4A7C15ULL + (seed << 12) + (seed >> 4);
  return seed * 0xFF51AFD7ED558CCDULL;
}

/// FNV-1a over arbitrary bytes.
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) { return HashBytes(s.data(), s.size()); }

/// 128-bit secret key for the keyed PRF.
struct PrfKey {
  uint64_t k0 = 0;
  uint64_t k1 = 0;

  /// Derives a subkey for an independent purpose (domain separation).
  PrfKey Derive(uint64_t purpose) const;
};

/// SipHash-2-4 of a byte string under `key`.
uint64_t SipHash24(const PrfKey& key, const void* data, size_t len);

/// Keyed PRF over a sequence of 64-bit words (tuple ids, element ids...).
uint64_t Prf(const PrfKey& key, const std::vector<uint64_t>& words);

/// Keyed PRF of a string (e.g. a relational primary key rendered as text).
uint64_t Prf(const PrfKey& key, std::string_view s);

}  // namespace qpwm

#endif  // QPWM_UTIL_HASH_H_
