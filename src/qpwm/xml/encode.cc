#include "qpwm/xml/encode.h"

#include <algorithm>
#include <charconv>
#include <map>

#include "qpwm/util/check.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"
#include "qpwm/xml/parser.h"

namespace qpwm {
namespace {

Result<Weight> ParseWeight(const std::string& text) {
  Weight value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::ParseError("weight element text '" + text + "' is not an integer");
  }
  return value;
}

// One entry of the effective child list of an XML element.
struct EffectiveChild {
  enum class Kind { kXml, kAttr } kind;
  XmlNodeId xml = kNoXmlNode;   // kXml
  std::string attr_label;       // kAttr: "@name"
  std::string attr_value;       // kAttr
};

class Encoder {
 public:
  Encoder(const XmlDocument& doc, const std::set<std::string>& weight_tags)
      : doc_(doc), weight_tags_(weight_tags) {}

  Result<EncodedXml> Encode() {
    out_.xml_to_tree.assign(doc_.size(), kNoNode);
    auto root = EncodeNode(doc_.root());
    if (!root.ok()) return root.status();
    QPWM_RETURN_NOT_OK(out_.tree.Finalize());
    out_.weights = WeightMap(1, out_.tree.size());
    out_.is_weight_node.assign(out_.tree.size(), false);
    for (const auto& [node, w] : pending_weights_) {
      out_.weights.SetElem(node, w);
      out_.is_weight_node[node] = true;
    }
    return std::move(out_);
  }

 private:
  // Creates the tree node for one XML node and (recursively) its subtree in
  // first-child / next-sibling form. Returns the tree node id.
  Result<NodeId> EncodeNode(XmlNodeId xml_id) {
    const XmlNode& n = doc_.node(xml_id);

    if (n.kind == XmlNode::Kind::kText) {
      NodeId v = out_.tree.AddNode(out_.sigma.Intern(n.text));
      RecordMapping(v, xml_id);
      return v;
    }

    NodeId v = out_.tree.AddNode(out_.sigma.Intern(n.tag));
    RecordMapping(v, xml_id);

    const bool is_weight = weight_tags_.count(n.tag) > 0;
    if (is_weight) {
      std::string text = doc_.TextContent(xml_id);
      auto w = ParseWeight(text);
      if (!w.ok()) return w.status();
      pending_weights_.emplace_back(v, w.value());
      bool has_element_child = false;
      for (XmlNodeId c : n.children) {
        if (doc_.node(c).kind == XmlNode::Kind::kElement) has_element_child = true;
      }
      if (has_element_child) {
        return Status::InvalidArgument("weight element <" + n.tag +
                                       "> must contain only its numeric value");
      }
      return v;  // numeric text absorbed into the weight map
    }

    // Effective children: attributes first, then document children.
    std::vector<EffectiveChild> children;
    for (const XmlAttr& a : n.attrs) {
      children.push_back({EffectiveChild::Kind::kAttr, kNoXmlNode, "@" + a.name, a.value});
    }
    for (XmlNodeId c : n.children) {
      children.push_back({EffectiveChild::Kind::kXml, c, "", ""});
    }

    NodeId prev = kNoNode;
    for (size_t i = 0; i < children.size(); ++i) {
      NodeId child_node;
      if (children[i].kind == EffectiveChild::Kind::kAttr) {
        child_node = out_.tree.AddNode(out_.sigma.Intern(children[i].attr_label));
        RecordMapping(child_node, kNoXmlNode);
        NodeId value_node = out_.tree.AddNode(out_.sigma.Intern(children[i].attr_value));
        RecordMapping(value_node, kNoXmlNode);
        out_.tree.SetLeft(child_node, value_node);
      } else {
        auto encoded = EncodeNode(children[i].xml);
        if (!encoded.ok()) return encoded;
        child_node = encoded.value();
      }
      if (i == 0) {
        out_.tree.SetLeft(v, child_node);
      } else {
        out_.tree.SetRight(prev, child_node);
      }
      prev = child_node;
    }
    return v;
  }

  void RecordMapping(NodeId tree_node, XmlNodeId xml_id) {
    if (out_.tree_to_xml.size() <= tree_node) out_.tree_to_xml.resize(tree_node + 1);
    out_.tree_to_xml[tree_node] = xml_id;
    if (xml_id != kNoXmlNode) out_.xml_to_tree[xml_id] = tree_node;
  }

  const XmlDocument& doc_;
  const std::set<std::string>& weight_tags_;
  EncodedXml out_;
  std::vector<std::pair<NodeId, Weight>> pending_weights_;
};

}  // namespace

Result<EncodedXml> EncodeXml(const XmlDocument& doc,
                             const std::set<std::string>& weight_tags) {
  return Encoder(doc, weight_tags).Encode();
}

XmlDocument ApplyWeights(const XmlDocument& doc, const EncodedXml& encoded,
                         const WeightMap& weights) {
  XmlDocument out = doc;
  for (NodeId v = 0; v < encoded.tree.size(); ++v) {
    if (!encoded.is_weight_node[v]) continue;
    XmlNodeId xml_id = encoded.tree_to_xml[v];
    QPWM_CHECK(xml_id != kNoXmlNode);
    const XmlNode& elem = out.node(xml_id);
    QPWM_CHECK(!elem.children.empty());
    for (XmlNodeId c : elem.children) {
      if (out.node(c).kind == XmlNode::Kind::kText) {
        out.mutable_node(c).text = StrCat(weights.GetElem(v));
        break;
      }
    }
  }
  return out;
}

namespace {

// Record signature of a weight element: own tag, ancestor tag path, and the
// text of the parent's non-weight element children (the record's key fields).
// Stable under subtree deletion of *other* records and under weight-value
// tampering (the weight's own text is deliberately excluded).
std::string WeightSignature(const XmlDocument& doc, XmlNodeId elem,
                            const std::set<std::string>& weight_tags) {
  std::string sig = doc.node(elem).tag;
  sig += '|';
  for (XmlNodeId p = doc.node(elem).parent; p != kNoXmlNode; p = doc.node(p).parent) {
    sig += doc.node(p).tag;
    sig += '/';
  }
  sig += '|';
  XmlNodeId parent = doc.node(elem).parent;
  if (parent != kNoXmlNode) {
    for (XmlNodeId sib : doc.node(parent).children) {
      const XmlNode& s = doc.node(sib);
      if (s.kind != XmlNode::Kind::kElement) continue;
      if (weight_tags.count(s.tag) > 0) continue;
      sig += s.tag;
      sig += '=';
      sig += doc.TextContent(sib);
      sig += ';';
    }
  }
  return sig;
}

// Weight-tagged elements of `doc` in document order.
std::vector<XmlNodeId> WeightElements(const XmlDocument& doc, XmlNodeId id,
                                      const std::set<std::string>& weight_tags) {
  std::vector<XmlNodeId> out;
  std::vector<XmlNodeId> stack{id};
  while (!stack.empty()) {
    XmlNodeId cur = stack.back();
    stack.pop_back();
    const XmlNode& n = doc.node(cur);
    if (n.kind != XmlNode::Kind::kElement) continue;
    if (weight_tags.count(n.tag) > 0) out.push_back(cur);
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  return out;
}

// When several records share a signature (e.g. students with the same
// firstname), a deletion shifts every later record of the class — naive
// doc-order pairing would hand each original the *next* record's value and
// flip votes instead of erasing them. Within a class we instead take the
// longest common subsequence of original-vs-suspect values, where a pair is
// compatible iff the suspect value is within the schemes' per-value
// distortion of the original. Originals left unmatched become erasures.
constexpr Weight kAlignTolerance = 1;

bool Compatible(Weight original, Weight suspect) {
  const Weight d = original - suspect;
  return d <= kAlignTolerance && d >= -kAlignTolerance;
}

// Per-original matched suspect index (or npos) within one signature class.
std::vector<size_t> MatchClass(const std::vector<Weight>& orig,
                               const std::vector<Weight>& sus) {
  constexpr size_t kNone = static_cast<size_t>(-1);
  const size_t n = orig.size();
  const size_t m = sus.size();
  std::vector<size_t> match(n, kNone);
  // Equal counts: the class is structurally untouched; doc-order 1:1 keeps
  // weight-only attacks (which may exceed the tolerance) decodable as votes.
  if (n == m || n * m > (size_t{16} << 20)) {
    for (size_t i = 0; i < std::min(n, m); ++i) match[i] = i;
    return match;
  }
  // dp[i][j] = LCS length of orig[i..) vs sus[j..).
  std::vector<uint32_t> dp((n + 1) * (m + 1), 0);
  auto at = [&](size_t i, size_t j) -> uint32_t& { return dp[i * (m + 1) + j]; };
  for (size_t i = n; i-- > 0;) {
    for (size_t j = m; j-- > 0;) {
      uint32_t best = std::max(at(i + 1, j), at(i, j + 1));
      if (Compatible(orig[i], sus[j])) {
        best = std::max(best, at(i + 1, j + 1) + 1);
      }
      at(i, j) = best;
    }
  }
  for (size_t i = 0, j = 0; i < n && j < m;) {
    if (Compatible(orig[i], sus[j]) && at(i, j) == at(i + 1, j + 1) + 1) {
      match[i] = j;
      ++i;
      ++j;
    } else if (at(i + 1, j) >= at(i, j + 1)) {
      ++i;
    } else {
      ++j;
    }
  }
  return match;
}

}  // namespace

Result<SuspectAlignment> AlignSuspectWeights(
    const XmlDocument& original, const EncodedXml& encoded,
    const XmlDocument& suspect, const std::set<std::string>& weight_tags) {
  SuspectAlignment out;
  out.weights = encoded.weights;
  out.present.assign(encoded.tree.size(), true);

  // Suspect weight records, grouped per signature in document order.
  std::map<std::string, std::vector<Weight>> suspect_by_sig;
  size_t suspect_records = 0;
  for (XmlNodeId e : WeightElements(suspect, suspect.root(), weight_tags)) {
    auto w = ParseWeight(suspect.TextContent(e));
    if (!w.ok()) return w.status();
    suspect_by_sig[WeightSignature(suspect, e, weight_tags)].push_back(w.value());
    ++suspect_records;
  }

  // Original weight nodes, grouped the same way.
  std::map<std::string, std::vector<NodeId>> original_by_sig;
  for (XmlNodeId e : WeightElements(original, original.root(), weight_tags)) {
    NodeId v = encoded.xml_to_tree[e];
    QPWM_CHECK(v != kNoNode);
    original_by_sig[WeightSignature(original, e, weight_tags)].push_back(v);
  }

  // Match within each signature class; unmatched originals are erasures.
  static const std::vector<Weight> kEmpty;
  for (const auto& [sig, nodes] : original_by_sig) {
    auto it = suspect_by_sig.find(sig);
    const std::vector<Weight>& sus = it == suspect_by_sig.end() ? kEmpty : it->second;
    std::vector<Weight> orig;
    orig.reserve(nodes.size());
    for (NodeId v : nodes) orig.push_back(encoded.weights.GetElem(v));
    std::vector<size_t> match = MatchClass(orig, sus);
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (match[i] == static_cast<size_t>(-1)) {
        out.present[nodes[i]] = false;
        ++out.missing;
      } else {
        out.weights.SetElem(nodes[i], sus[match[i]]);
        ++out.matched;
      }
    }
  }
  out.extra = suspect_records - out.matched;
  return out;
}

XmlDocument SchoolExampleDocument() {
  static const char* kXml = R"(
<school>
  <student>
    <firstname>John</firstname>
    <lastname>Doe</lastname>
    <exam>11</exam>
  </student>
  <student>
    <firstname>Robert</firstname>
    <lastname>Durant</lastname>
    <exam>16</exam>
  </student>
  <student>
    <firstname>Robert</firstname>
    <lastname>Smith</lastname>
    <exam>12</exam>
  </student>
</school>
)";
  return MustParseXml(kXml);
}

XmlDocument RandomSchoolDocument(size_t students, Rng& rng, Weight grade_lo,
                                 Weight grade_hi, size_t name_pool) {
  static const char* kFirst[] = {"John", "Robert", "Alice",  "Maria",
                                 "Wei",  "Ahmed",  "Sofia",  "Ivan"};
  static const char* kLast[] = {"Doe", "Durant", "Smith", "Khan", "Garcia", "Li"};
  QPWM_CHECK_GE(name_pool, 1u);
  QPWM_CHECK_LE(name_pool, 8u);
  XmlDocument doc;
  XmlNodeId school = doc.AddElement("school");
  doc.SetRoot(school);
  for (size_t i = 0; i < students; ++i) {
    XmlNodeId student = doc.AddElement("student");
    doc.AppendChild(school, student);
    XmlNodeId firstname = doc.AddElement("firstname");
    doc.AppendChild(student, firstname);
    doc.AppendChild(firstname, doc.AddText(kFirst[rng.Below(name_pool)]));
    XmlNodeId lastname = doc.AddElement("lastname");
    doc.AppendChild(student, lastname);
    doc.AppendChild(lastname, doc.AddText(kLast[rng.Below(6)]));
    XmlNodeId exam = doc.AddElement("exam");
    doc.AppendChild(student, exam);
    doc.AppendChild(exam, doc.AddText(StrCat(rng.Uniform(grade_lo, grade_hi))));
  }
  return doc;
}

}  // namespace qpwm
