// Fixture: raw-status — Status constructed from a raw StatusCode outside the
// factories in util/status.h. Never compiled, only linted.
Status Make() {
  return Status(StatusCode::kInternal, "handcrafted");
}
