// Small string helpers shared by parsers, loggers and bench tables.
#ifndef QPWM_UTIL_STR_H_
#define QPWM_UTIL_STR_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace qpwm {

/// Concatenates streamable arguments into a string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace qpwm

#endif  // QPWM_UTIL_STR_H_
