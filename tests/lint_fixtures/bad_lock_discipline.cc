// Fixture: lock-discipline (a) — a QPWM_GUARDED_BY member touched by a
// method that neither locks the mutex nor declares QPWM_REQUIRES. Never
// compiled, only linted (the annotation macro need not expand).
#include <mutex>

namespace fx {

class Counter {
 public:
  void Add(int d) {
    total_ += d;  // no lock held
  }
  int total() {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }

 private:
  std::mutex mu_;
  int total_ QPWM_GUARDED_BY(mu_) = 0;
};

}  // namespace fx
