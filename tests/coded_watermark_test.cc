// End-to-end tests for the coded watermark channel: codec + interleaver +
// soft-decision decoding threaded through AdversarialScheme, including the
// acceptance property (interleaved ECC recovers where the uncoded channel
// reports erased bits) and the identity-codec bit-compatibility guarantee.
#include <gtest/gtest.h>

#include "qpwm/coding/coded_watermark.h"
#include "qpwm/coding/codec.h"
#include "qpwm/core/adversarial.h"
#include "qpwm/core/attack.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/core/tree_scheme.h"
#include "qpwm/logic/parser.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/tree/mso.h"
#include "qpwm/util/parallel.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

struct Fixture {
  Structure g;
  std::unique_ptr<AtomQuery> query;
  std::unique_ptr<QueryIndex> index;
  WeightMap weights;
  std::unique_ptr<LocalScheme> scheme;

  explicit Fixture(size_t n, uint64_t seed) : weights(1, 0) {
    Rng rng(seed);
    g = RandomBoundedDegreeGraph(n, 3, 3 * n, false, rng);
    query = AtomQuery::Adjacency("E");
    index = std::make_unique<QueryIndex>(g, *query, AllParams(g, 1));
    weights = RandomWeights(g, 1000, 9999, rng);
    LocalSchemeOptions opts;
    opts.epsilon = 0.25;
    opts.key = {seed, seed + 1};
    opts.encoding = PairEncoding::kAntipodal;
    scheme = std::make_unique<LocalScheme>(
        LocalScheme::Plan(*index, opts).ValueOrDie());
  }
};

BitVec RandomPayload(size_t bits, uint64_t seed) {
  Rng rng(seed);
  BitVec payload(bits);
  for (size_t i = 0; i < bits; ++i) payload.Set(i, rng.Coin());
  return payload;
}

TEST(CodedWatermarkTest, CleanDetectIsMatchWithTinyBound) {
  Fixture s(600, 3);
  AdversarialScheme adv(*s.scheme, 5);
  auto codec = MakeCodec("hamming").ValueOrDie();
  CodedWatermark wm(adv, *codec);
  ASSERT_GT(wm.PayloadBits(), 0u);

  BitVec payload = RandomPayload(wm.PayloadBits(), 30);
  WeightMap marked = wm.Embed(s.weights, payload);
  HonestServer server(*s.index, marked);
  CodedDetection d = wm.Detect(s.weights, server).ValueOrDie();

  EXPECT_EQ(d.message.payload, payload);
  EXPECT_TRUE(d.message.complete());
  EXPECT_EQ(d.message.corrected, 0u);
  EXPECT_EQ(d.verdict.kind, VerdictKind::kMatch);
  EXPECT_LE(d.verdict.fp_bound, 1e-6);
  EXPECT_EQ(d.verdict.ExitCode(), 0);
  EXPECT_EQ(d.verdict.channel_disagreements, 0u);
}

TEST(CodedWatermarkTest, HonestUnmarkedSuspectIsNoMark) {
  Fixture s(400, 5);
  AdversarialScheme adv(*s.scheme, 5);
  auto codec = MakeCodec("hamming").ValueOrDie();
  CodedWatermark wm(adv, *codec);
  ASSERT_GT(wm.PayloadBits(), 0u);

  // The suspect serves the untouched original: every pair delta is 0, no
  // votes are cast, and the bound must stay at 1 (no evidence at all).
  HonestServer server(*s.index, s.weights);
  CodedDetection d = wm.Detect(s.weights, server).ValueOrDie();
  EXPECT_EQ(d.verdict.kind, VerdictKind::kNoMark);
  EXPECT_EQ(d.verdict.fp_bound, 1.0);
  EXPECT_EQ(d.verdict.votes_cast, 0u);
}

TEST(CodedWatermarkTest, IdentityCodecIsBitIdenticalToRawChannel) {
  Fixture s(400, 7);
  AdversarialScheme adv(*s.scheme, 5);
  IdentityCodec codec;
  CodedWatermark wm(adv, codec);
  ASSERT_EQ(wm.PayloadBits(), adv.CapacityBits());
  ASSERT_EQ(wm.UsedChannelBits(), adv.CapacityBits());

  BitVec msg = RandomPayload(adv.CapacityBits(), 70);
  EXPECT_EQ(wm.ChannelWord(msg), msg);

  // Identical embeddings...
  WeightMap via_codec = wm.Embed(s.weights, msg);
  WeightMap via_raw = adv.Embed(s.weights, msg);
  bool same = true;
  via_raw.ForEach([&](const Tuple& t, Weight w) {
    same &= via_codec.Get(t) == w;
  });
  EXPECT_TRUE(same);

  // ...and an identical channel report, including under structural damage.
  HonestServer base(*s.index, via_raw);
  TamperedAnswerServer server(base);
  Rng rng(71);
  for (const Tuple& t : SubsetDeletionAttack(*s.index, 0.4, rng)) {
    server.Erase(t);
  }
  AdversarialDetection raw = adv.Detect(s.weights, server).ValueOrDie();
  CodedDetection coded = wm.Detect(s.weights, server).ValueOrDie();
  EXPECT_EQ(coded.channel.mark, raw.mark);
  EXPECT_EQ(coded.channel.margins, raw.margins);
  EXPECT_EQ(coded.channel.vote_diffs, raw.vote_diffs);
  EXPECT_EQ(coded.channel.votes_cast, raw.votes_cast);
  EXPECT_EQ(coded.channel.bit_erased, raw.bit_erased);
  EXPECT_EQ(coded.channel.pairs_erased, raw.pairs_erased);
  // The decoded "payload" is the channel mark itself, erasure for erasure.
  EXPECT_EQ(coded.message.payload, raw.mark);
  EXPECT_EQ(coded.message.bits_erased, raw.bits_erased);
  EXPECT_EQ(coded.message.corrected, 0u);
}

// The acceptance property: a burst that leaves the uncoded channel with
// erased message bits is fully absorbed by the interleaved ECC codecs.
TEST(CodedWatermarkTest, BurstDeletionIdentityErasesButEccRecovers) {
  Fixture s(600, 11);
  AdversarialScheme adv(*s.scheme, 5);
  ASSERT_GT(adv.CapacityBits(), 20u);

  ComposedAttackSpec spec;
  spec.region_frac = 0.2;
  spec.seed = 110;

  size_t identity_erased = 0;
  for (const char* cs : {"identity", "hamming", "rm:4"}) {
    auto codec = MakeCodec(cs).ValueOrDie();
    CodedWatermark wm(adv, *codec);
    ASSERT_GT(wm.PayloadBits(), 0u) << cs;
    BitVec payload = RandomPayload(wm.PayloadBits(), 111);
    WeightMap marked = wm.Embed(s.weights, payload);
    ComposedSuspect suspect = ApplyComposedAttack(
        *s.index, s.scheme->marking().pairs(), adv.Redundancy(), marked, spec);
    CodedDetection d = wm.Detect(s.weights, *suspect.server).ValueOrDie();
    EXPECT_GT(d.channel.bits_erased, 0u) << cs;  // the burst really landed
    if (std::string(cs) == "identity") {
      identity_erased = d.message.bits_erased;
    } else {
      EXPECT_TRUE(d.message.complete()) << cs;
      EXPECT_EQ(d.message.payload, payload) << cs;
      EXPECT_GT(d.message.filled, 0u) << cs;
    }
  }
  EXPECT_GT(identity_erased, 0u);
}

TEST(CodedWatermarkTest, InterleavingIsLoadBearingUnderBursts) {
  // Same codec, same burst; only the interleaver differs. The contiguous
  // layout concentrates the burst in few codewords and loses payload bits,
  // the interleaved layout spreads it below every block's radius.
  Fixture s(600, 13);
  AdversarialScheme adv(*s.scheme, 5);
  auto codec = MakeCodec("hamming").ValueOrDie();
  ASSERT_GT(codec->PayloadBits(adv.CapacityBits()), 0u);

  ComposedAttackSpec spec;
  spec.region_frac = 0.25;
  spec.seed = 130;

  CodedOptions flat;
  flat.interleave = false;
  size_t flat_bad = 0;
  for (int interleave = 0; interleave < 2; ++interleave) {
    CodedWatermark wm(adv, *codec, interleave ? CodedOptions{} : flat);
    BitVec payload = RandomPayload(wm.PayloadBits(), 131);
    WeightMap marked = wm.Embed(s.weights, payload);
    ComposedSuspect suspect = ApplyComposedAttack(
        *s.index, s.scheme->marking().pairs(), adv.Redundancy(), marked, spec);
    CodedDetection d = wm.Detect(s.weights, *suspect.server).ValueOrDie();
    size_t bad = d.message.bits_erased;
    for (size_t i = 0; i < d.message.payload.size(); ++i) {
      if (!d.message.bit_erased[i] &&
          d.message.payload.Get(i) != payload.Get(i)) {
        ++bad;
      }
    }
    if (interleave) {
      EXPECT_EQ(bad, 0u);
      EXPECT_EQ(d.message.payload, payload);
    } else {
      flat_bad = bad;
    }
  }
  EXPECT_GT(flat_bad, 0u);
}

TEST(CodedWatermarkTest, DetectManyMatchesSerialForAnyThreadCount) {
  Fixture s(400, 17);
  AdversarialScheme adv(*s.scheme, 5);
  auto codec = MakeCodec("rm:4").ValueOrDie();
  CodedWatermark wm(adv, *codec);
  ASSERT_GT(wm.PayloadBits(), 0u);

  BitVec payload = RandomPayload(wm.PayloadBits(), 170);
  WeightMap marked = wm.Embed(s.weights, payload);
  HonestServer intact(*s.index, marked);
  HonestServer unmarked(*s.index, s.weights);
  ComposedAttackSpec spec;
  spec.region_frac = 0.15;
  spec.deletion_frac = 0.1;
  spec.seed = 171;
  ComposedSuspect attacked = ApplyComposedAttack(
      *s.index, s.scheme->marking().pairs(), adv.Redundancy(), marked, spec);
  std::vector<const AnswerServer*> suspects = {&intact, &unmarked,
                                               attacked.server.get()};

  std::vector<CodedDetection> serial;
  for (const AnswerServer* suspect : suspects) {
    serial.push_back(wm.Detect(s.weights, *suspect).ValueOrDie());
  }
  for (size_t threads : {1u, 4u}) {
    SetParallelThreads(threads);
    std::vector<CodedDetection> batch = wm.DetectMany(s.weights, suspects);
    ASSERT_EQ(batch.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(batch[i].message.payload, serial[i].message.payload);
      EXPECT_EQ(batch[i].message.bits_erased, serial[i].message.bits_erased);
      EXPECT_EQ(batch[i].verdict.kind, serial[i].verdict.kind);
      EXPECT_EQ(batch[i].verdict.fp_bound, serial[i].verdict.fp_bound);
      EXPECT_EQ(batch[i].verdict.vote_weight, serial[i].verdict.vote_weight);
      EXPECT_EQ(batch[i].channel.vote_diffs, serial[i].channel.vote_diffs);
    }
  }
  SetParallelThreads(0);
  EXPECT_EQ(serial[0].verdict.kind, VerdictKind::kMatch);
  EXPECT_EQ(serial[1].verdict.kind, VerdictKind::kNoMark);
}

TEST(CodedWatermarkTest, TreeSchemeCodedRoundTrip) {
  // The coded layer is channel-agnostic: same codec over the tree scheme.
  Alphabet sigma;
  sigma.Intern("a");
  sigma.Intern("b");
  sigma.Intern("c");
  Dta query = CompileMso(*MustParseFormula("LEQ(u, v) & P_b(v)"), sigma,
                         {"u", "v"})
                  .ValueOrDie()
                  .dta;
  Rng rng(19);
  BinaryTree t = RandomBinaryTree(1500, 3, rng);
  WeightMap w(1, t.size());
  for (NodeId v = 0; v < t.size(); ++v) w.SetElem(v, rng.Uniform(100, 999));

  TreeSchemeOptions opts;
  opts.key = {19, 20};
  opts.encoding = PairEncoding::kAntipodal;
  auto base = TreeScheme::Plan(t, t.labels(), 3, query, 1, opts).ValueOrDie();
  AdversarialScheme adv(base, 5);
  auto codec = MakeCodec("hamming").ValueOrDie();
  CodedWatermark wm(adv, *codec);
  if (wm.PayloadBits() == 0) GTEST_SKIP();

  BitVec payload = RandomPayload(wm.PayloadBits(), 190);
  WeightMap marked = wm.Embed(w, payload);
  HonestTreeServer server(t, t.labels(), 3, query, 1, marked);
  CodedDetection d = wm.Detect(w, server).ValueOrDie();
  EXPECT_EQ(d.message.payload, payload);
  EXPECT_TRUE(d.message.complete());
}

}  // namespace
}  // namespace qpwm
