# CMake generated Testfile for 
# Source directory: /root/repo/src/qpwm/tree
# Build directory: /root/repo/build/src/qpwm/tree
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
