// Fixture: xtu-discarded-status — a Status parked in a local that is never
// inspected afterwards (the interprocedural complement to the bare
// discarded-status rule). Never compiled, only linted.
namespace fx {

Status Save(int v);

int Store(int v) {
  Status status = Save(v);
  return v + 1;
}

}  // namespace fx
