// The coded watermark channel: payload -> codeword -> interleaved pair
// groups, and back through soft-decision decoding with a stated
// false-positive bound.
//
// Layering (each stage wraps the previous, nothing is bypassed):
//
//   payload bits  --MessageCodec::Encode-->  codeword bits
//   codeword bits --BlockInterleaver------>  channel bits (pair groups)
//   channel bits  --AdversarialScheme----->  antipodal pair deltas
//
// and on detection the reverse: AdversarialScheme::Detect produces per-group
// soft votes (signed vote differences + erasure flags), the interleaver
// gathers them back into codeword order, the codec decodes, and the verdict
// bounds the probability that an unrelated database would fake the result.
//
// With the identity codec the codeword equals the payload, the interleaver
// is the identity permutation, and Embed/the channel half of Detect are
// bit-identical to the raw AdversarialScheme — the uncoded path is the
// degenerate case, not a separate code path.
#ifndef QPWM_CODING_CODED_WATERMARK_H_
#define QPWM_CODING_CODED_WATERMARK_H_

#include <memory>
#include <vector>

#include "qpwm/coding/codec.h"
#include "qpwm/coding/interleaver.h"
#include "qpwm/coding/verdict.h"
#include "qpwm/core/adversarial.h"

namespace qpwm {

struct CodedOptions {
  /// Stripe codewords across the channel (see interleaver.h). Off = each
  /// codeword occupies a contiguous group range, the burst-fragile layout
  /// kept as an ablation for the fault campaign.
  bool interleave = true;
  VerdictOptions verdict;
};

/// Full report of one coded detection run.
struct CodedDetection {
  /// The raw channel-level report (group votes, margins, erasures) — same
  /// object AdversarialScheme::Detect returns, nothing is hidden by coding.
  AdversarialDetection channel;
  /// Decoded payload with per-bit confidences and correction accounting.
  DecodedMessage message;
  /// Statistical verdict over the decoded payload.
  DetectionVerdict verdict;
};

/// A message codec threaded through an AdversarialScheme. The scheme and
/// codec must outlive the wrapper.
class CodedWatermark {
 public:
  CodedWatermark(const AdversarialScheme& channel, const MessageCodec& codec,
                 CodedOptions options = {});

  /// Payload capacity after coding overhead: k * floor(channel bits / n).
  size_t PayloadBits() const { return payload_bits_; }
  /// Channel bits carrying code symbols; trailing groups stay zero.
  size_t UsedChannelBits() const { return used_bits_; }
  const MessageCodec& codec() const { return *codec_; }
  const AdversarialScheme& channel() const { return *channel_; }

  /// Embeds a payload of PayloadBits() bits.
  WeightMap Embed(const WeightMap& original, const BitVec& payload) const;

  /// Detects, decodes, and judges. Never fails on structural damage —
  /// erasures flow through the decoder into a partial verdict.
  [[nodiscard]] Result<CodedDetection> Detect(const WeightMap& original,
                                const AnswerServer& suspect,
                                const DetectOptions& options = {}) const;

  /// Multi-suspect fan-out: the channel reads run on the thread pool via
  /// AdversarialScheme::DetectMany; decoding and judging are deterministic
  /// per suspect, so results are index-aligned and bit-identical to serial
  /// Detect calls for any thread count.
  std::vector<CodedDetection> DetectMany(
      const WeightMap& original, const std::vector<const AnswerServer*>& suspects,
      const DetectOptions& options = {}) const;

  /// The channel word Embed writes: codec + interleaver applied to payload,
  /// zero-padded to the channel's full width. Exposed for tests and for the
  /// fault campaign's region-deletion targeting.
  BitVec ChannelWord(const BitVec& payload) const;

 private:
  CodedDetection DecodeChannel(AdversarialDetection detection) const;
  size_t SlotOf(size_t codeword_index) const;

  const AdversarialScheme* channel_;
  const MessageCodec* codec_;
  CodedOptions options_;
  size_t used_bits_ = 0;
  size_t payload_bits_ = 0;
  BlockInterleaver interleaver_;
};

}  // namespace qpwm

#endif  // QPWM_CODING_CODED_WATERMARK_H_
