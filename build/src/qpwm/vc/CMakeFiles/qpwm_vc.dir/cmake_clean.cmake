file(REMOVE_RECURSE
  "CMakeFiles/qpwm_vc.dir/vcdim.cc.o"
  "CMakeFiles/qpwm_vc.dir/vcdim.cc.o.d"
  "libqpwm_vc.a"
  "libqpwm_vc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpwm_vc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
