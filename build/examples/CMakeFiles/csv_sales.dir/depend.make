# Empty dependencies file for csv_sales.
# This may be replaced when dependencies are built.
