#include <gtest/gtest.h>

#include <algorithm>

#include "qpwm/logic/parser.h"
#include "qpwm/tree/mso.h"
#include "qpwm/tree/query.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

class TreeQueryTest : public ::testing::Test {
 protected:
  TreeQueryTest() {
    sigma_.Intern("a");
    sigma_.Intern("b");
    sigma_.Intern("c");
  }

  Dta CompileQuery(const std::string& text, std::vector<std::string> vars) {
    FormulaPtr f = MustParseFormula(text);
    return CompileMso(*f, sigma_, vars).ValueOrDie().dta;
  }

  Alphabet sigma_;
};

TEST_F(TreeQueryTest, EvaluateWaMatchesMemberWa) {
  Dta dta = CompileQuery("LEQ(u, v) & P_b(v)", {"u", "v"});
  Rng rng(21);
  for (int trial = 0; trial < 6; ++trial) {
    BinaryTree t = RandomBinaryTree(2 + rng.Below(40), 3, rng);
    for (NodeId a = 0; a < t.size(); ++a) {
      auto wa = EvaluateWa(t, t.labels(), 3, dta, 1, a);
      for (NodeId b = 0; b < t.size(); ++b) {
        bool in = std::binary_search(wa.begin(), wa.end(), b);
        EXPECT_EQ(in, MemberWa(t, t.labels(), 3, dta, 1, a, b))
            << "a=" << a << " b=" << b;
      }
    }
  }
}

TEST_F(TreeQueryTest, EvaluateWaSemantics) {
  Dta dta = CompileQuery("LEQ(u, v) & P_b(v)", {"u", "v"});
  BinaryTree t = CompleteTree(7, 3);  // labels 0,1,2,0,1,2,0
  // W_root = b-labeled descendants of the root = nodes labeled 'b' (1).
  auto w = EvaluateWa(t, t.labels(), 3, dta, 1, t.root());
  std::vector<NodeId> expect;
  for (NodeId v = 0; v < 7; ++v) {
    if (t.label(v) == 1) expect.push_back(v);
  }
  EXPECT_EQ(w, expect);
}

TEST_F(TreeQueryTest, ParamArityZero) {
  Dta dta = CompileQuery("P_c(v) & LEAF(v)", {"v"});
  Rng rng(22);
  BinaryTree t = RandomBinaryTree(25, 3, rng);
  auto w = EvaluateWa(t, t.labels(), 3, dta, 0, 0);
  for (NodeId v = 0; v < t.size(); ++v) {
    bool expect = t.label(v) == 2 && t.IsLeaf(v);
    EXPECT_EQ(std::binary_search(w.begin(), w.end(), v), expect);
  }
}

TEST_F(TreeQueryTest, ResultPebbleOnParamNode) {
  // v = u is allowed: both pebbles on the same node.
  Dta dta = CompileQuery("LEQ(u, v)", {"u", "v"});
  BinaryTree t = ChainTree(5, 3);
  for (NodeId a = 0; a < 5; ++a) {
    auto w = EvaluateWa(t, t.labels(), 3, dta, 1, a);
    EXPECT_TRUE(std::binary_search(w.begin(), w.end(), a));
  }
}

TEST_F(TreeQueryTest, ProjectParamTrackGivesActiveSet) {
  Dta dta = CompileQuery("LEQ(u, v) & P_b(v)", {"u", "v"});
  Dta exists_a = ProjectParamTrack(dta, 3);
  Rng rng(23);
  BinaryTree t = RandomBinaryTree(30, 3, rng);
  auto active = EvaluateWa(t, t.labels(), 3, exists_a, 0, 0);
  // Manual union of W_a.
  std::vector<bool> expect(t.size(), false);
  for (NodeId a = 0; a < t.size(); ++a) {
    for (NodeId b : EvaluateWa(t, t.labels(), 3, dta, 1, a)) expect[b] = true;
  }
  for (NodeId v = 0; v < t.size(); ++v) {
    EXPECT_EQ(std::binary_search(active.begin(), active.end(), v), expect[v]) << v;
  }
}

TEST_F(TreeQueryTest, SwapPebbleTracksInvertsRoles) {
  Dta dta = CompileQuery("S1(u, v)", {"u", "v"});
  Dta swapped = SwapPebbleTracks(dta, 3);
  Rng rng(24);
  BinaryTree t = RandomBinaryTree(20, 3, rng);
  for (NodeId a = 0; a < t.size(); ++a) {
    for (NodeId b = 0; b < t.size(); ++b) {
      EXPECT_EQ(MemberWa(t, t.labels(), 3, dta, 1, a, b),
                MemberWa(t, t.labels(), 3, swapped, 1, b, a));
    }
  }
}

TEST_F(TreeQueryTest, SkeletonStructureShape) {
  BinaryTree t = CompleteTree(7, 2);
  Structure s = TreeSkeletonStructure(t);
  EXPECT_EQ(s.universe_size(), 7u);
  EXPECT_EQ(s.relation("S1").size(), 3u);
  EXPECT_EQ(s.relation("S2").size(), 3u);
}

TEST_F(TreeQueryTest, MakeTreeQueryBridgesToParametricQuery) {
  Dta dta = CompileQuery("LEQ(u, v)", {"u", "v"});
  BinaryTree t = ChainTree(6, 3);
  auto labels = t.labels();
  auto query = MakeTreeQuery(t, labels, 3, dta, 1);
  Structure skeleton = TreeSkeletonStructure(t);
  EXPECT_EQ(query->ParamArity(), 1u);
  EXPECT_EQ(query->ResultArity(), 1u);
  // Descendants of node 2 on a left chain: {2, 3, 4, 5}.
  auto w = query->Evaluate(skeleton, Tuple{2});
  EXPECT_EQ(w.size(), 4u);
}

}  // namespace
}  // namespace qpwm
