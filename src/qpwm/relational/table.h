// A small typed relational engine: enough to host the paper's travel-agency
// database (Example 1) and the baseline comparison workloads. Columns are
// either *key* columns (parameter values — immutable, they identify data and
// may appear in queries) or *weight* columns (numeric, distortable). Each
// weight column declares which key column its values attach to, mirroring
// the paper's "elements map to numerical values" convention.
#ifndef QPWM_RELATIONAL_TABLE_H_
#define QPWM_RELATIONAL_TABLE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "qpwm/structure/weighted.h"
#include "qpwm/util/status.h"

namespace qpwm {

enum class ColumnRole { kKey, kWeight };

struct ColumnSpec {
  std::string name;
  ColumnRole role = ColumnRole::kKey;
  /// For weight columns: the key column (same table) whose value carries the
  /// weight.
  std::string weight_of;
};

/// A cell: strings for key columns, integers for weight columns.
using Cell = std::variant<std::string, Weight>;

class Table {
 public:
  Table(std::string name, std::vector<ColumnSpec> columns);

  const std::string& name() const { return name_; }
  const std::vector<ColumnSpec>& columns() const { return columns_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<Cell>& row(size_t i) const { return rows_[i]; }
  std::vector<Cell>& mutable_row(size_t i) { return rows_[i]; }

  /// Index of the column named `name`.
  [[nodiscard]] Result<size_t> ColumnIndex(const std::string& name) const;

  /// Appends a row; cell kinds must match column roles.
  [[nodiscard]] Status AddRow(std::vector<Cell> row);

  /// Key cell as string / weight cell as integer (role-checked).
  const std::string& KeyAt(size_t row, size_t col) const;
  Weight WeightAt(size_t row, size_t col) const;
  void SetWeightAt(size_t row, size_t col, Weight w);

  /// Indices of weight columns.
  std::vector<size_t> WeightColumns() const;

 private:
  std::string name_;
  std::vector<ColumnSpec> columns_;
  std::vector<std::vector<Cell>> rows_;
};

/// A named collection of tables.
class Database {
 public:
  Table& AddTable(Table t);
  const std::vector<Table>& tables() const { return tables_; }
  [[nodiscard]] Result<const Table*> Find(const std::string& name) const;
  [[nodiscard]] Result<Table*> FindMutable(const std::string& name);

 private:
  std::vector<Table> tables_;
};

/// The translation of Section 1: one relation per table over its key
/// columns; universe = all distinct key values; weights attach to the
/// declared key elements (s = 1).
struct RelationalInstance {
  Structure structure;
  WeightMap weights;
  /// Element actually appears in some weight cell (key-only elements such as
  /// city names carry no weight; their WeightMap entry is a filler 0).
  std::vector<bool> has_weight;

  RelationalInstance() : weights(1, 0) {}
};

/// Converts; fails if one element receives two different weights.
[[nodiscard]] Result<RelationalInstance> ToWeightedStructure(const Database& db);

/// Writes (watermarked) element weights back into the weight cells of a copy
/// of `db` (inverse of ToWeightedStructure on the weight part).
[[nodiscard]] Result<Database> ApplyWeightsToDatabase(const Database& db,
                                        const RelationalInstance& instance,
                                        const WeightMap& weights);

/// Subset-selection attack: keeps each row independently with probability
/// `keep_frac` (an attacker shipping a sampled fragment of the marked table).
class Rng;
Table SubsetRowsAttack(const Table& table, double keep_frac, Rng& rng);

/// Alignment of a structurally tampered suspect instance against the
/// original, keyed by element name (key values identify data): which original
/// elements survive in the suspect, and with what weights. Feeds the
/// erasure-aware detection path — absent elements are served as deleted.
struct AlignedSuspect {
  /// Suspect weights over the *original* universe ids; absent elements keep
  /// the original value (they are erased from answers anyway).
  WeightMap weights;
  std::vector<bool> present;  // original element still in the suspect
  size_t matched = 0;
  size_t missing = 0;  // original elements gone from the suspect
  size_t extra = 0;    // suspect elements with no original counterpart

  AlignedSuspect() : weights(1, 0) {}
};

AlignedSuspect AlignSuspectInstance(const RelationalInstance& original,
                                    const RelationalInstance& suspect);

/// The paper's Example 1 travel database: Route(travel, transport) and
/// Timetable(transport, departure, arrival, type, duration), durations in
/// minutes (10:35 -> 635).
Database TravelAgencyDatabase();

/// A scaled synthetic travel database: `travels` packages over `transports`
/// legs (bounded fan-out keeps the Gaifman degree small).
class Rng;
Database RandomTravelDatabase(size_t travels, size_t transports, size_t max_legs,
                              Rng& rng);

}  // namespace qpwm

#endif  // QPWM_RELATIONAL_TABLE_H_
