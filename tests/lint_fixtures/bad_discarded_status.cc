// Fixture: discarded-status — a call to a Status-returning function whose
// result is dropped on the floor. Never compiled, only linted.
Status EmbedWatermark(int key);

void Caller() {
  EmbedWatermark(42);
}
