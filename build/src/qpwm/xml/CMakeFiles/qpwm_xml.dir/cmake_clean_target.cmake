file(REMOVE_RECURSE
  "libqpwm_xml.a"
)
