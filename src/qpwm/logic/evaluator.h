// Model checking of FO/MSO formulas on finite structures.
//
// The evaluator is the semantic reference implementation: straightforward
// recursion, with first-order quantifiers ranging over the universe and set
// quantifiers over all subsets (exponential — cross-validation on small
// structures only; the automaton pipeline in qpwm/tree is the scalable MSO
// path on trees).
#ifndef QPWM_LOGIC_EVALUATOR_H_
#define QPWM_LOGIC_EVALUATOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "qpwm/logic/formula.h"
#include "qpwm/structure/structure.h"
#include "qpwm/util/status.h"

namespace qpwm {

/// Variable assignment: first-order vars to elements, set vars to subsets
/// (characteristic vectors over the universe).
struct Environment {
  std::unordered_map<std::string, ElemId> elems;
  std::unordered_map<std::string, std::vector<bool>> sets;
};

/// Evaluates formulas against one structure. Relation names are resolved
/// against the structure's signature at evaluation time.
class Evaluator {
 public:
  explicit Evaluator(const Structure& g) : g_(g) {}

  /// Truth of `f` under `env`; all free variables must be assigned.
  /// Fails with InvalidArgument on unknown relations or unbound variables.
  [[nodiscard]] Result<bool> Eval(const Formula& f, Environment& env) const;

  /// Aborting convenience wrapper.
  bool MustEval(const Formula& f, Environment& env) const;

 private:
  const Structure& g_;
};

}  // namespace qpwm

#endif  // QPWM_LOGIC_EVALUATOR_H_
