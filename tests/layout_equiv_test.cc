// Layout-equivalence suite for the flat-memory (CSR) storage layer: every
// hot-path rewrite — flat tuple storage, CSR incidence/adjacency, arena
// neighborhood extraction, pooled detection scratch — must be a pure layout
// change. These tests pin the observable behavior to naive references and to
// the legacy (allocating) code paths, on grid, random bounded-degree, and
// XML-encoded instances, across thread counts {1, 2, 8}.
//
// The across-thread tests double as the TSan coverage for scratch-arena
// reuse: TypeAll and DetectMany hand pooled scratch (NeighborhoodScratch,
// DetectScratch) to real worker threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "qpwm/core/adversarial.h"
#include "qpwm/core/answers.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/core/tree_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/canon_cache.h"
#include "qpwm/structure/gaifman.h"
#include "qpwm/structure/generators.h"
#include "qpwm/structure/isomorphism.h"
#include "qpwm/structure/neighborhood.h"
#include "qpwm/structure/structure.h"
#include "qpwm/structure/typemap.h"
#include "qpwm/util/parallel.h"
#include "qpwm/util/random.h"
#include "qpwm/xml/encode.h"
#include "qpwm/xml/xpath.h"

namespace qpwm {
namespace {

// Restores the ambient thread setting however a test exits.
struct ThreadGuard {
  ~ThreadGuard() { SetParallelThreads(0); }
};

std::vector<Tuple> Materialize(const Relation& rel) {
  std::vector<Tuple> out;
  for (TupleRef t : rel.tuples()) out.push_back(t.ToTuple());
  return out;
}

bool SameStructure(const Structure& a, const Structure& b) {
  if (a.universe_size() != b.universe_size() ||
      a.num_relations() != b.num_relations()) {
    return false;
  }
  for (size_t r = 0; r < a.num_relations(); ++r) {
    if (Materialize(a.relation(r)) != Materialize(b.relation(r))) return false;
  }
  return true;
}

bool SameObservations(const std::vector<PairObservation>& a,
                      const std::vector<PairObservation>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].delta != b[i].delta || a[i].erased != b[i].erased) return false;
  }
  return true;
}

bool SameDetection(const AdversarialDetection& a, const AdversarialDetection& b) {
  if (a.mark.size() != b.mark.size() || a.margins != b.margins ||
      a.vote_diffs != b.vote_diffs || a.votes_cast != b.votes_cast ||
      a.min_margin != b.min_margin || a.group_sizes != b.group_sizes ||
      a.bit_erased != b.bit_erased || a.pairs_erased != b.pairs_erased ||
      a.bits_recovered != b.bits_recovered || a.bits_erased != b.bits_erased) {
    return false;
  }
  for (size_t i = 0; i < a.mark.size(); ++i) {
    if (a.mark.Get(i) != b.mark.Get(i)) return false;
  }
  return true;
}

// --- Relation: flat CSR storage vs set semantics -----------------------------

TEST(LayoutEquivTest, RelationFlatStorageMatchesSetSemantics) {
  Rng rng(7);
  Relation rel("R", 2);
  std::set<Tuple> reference;
  for (int i = 0; i < 500; ++i) {
    Tuple t = {static_cast<ElemId>(rng.Below(40)),
               static_cast<ElemId>(rng.Below(40))};
    rel.Add(t);  // duplicates must dedup
    reference.insert(t);
  }
  ASSERT_EQ(rel.size(), reference.size());
  for (const Tuple& t : reference) EXPECT_TRUE(rel.Contains(t));
  EXPECT_FALSE(rel.Contains(Tuple{41, 0}));
  EXPECT_FALSE(rel.Contains(Tuple{0}));  // wrong arity

  rel.Seal();
  // Sorted, still deduplicated, and tuple(i) agrees with tuples()[i].
  std::vector<Tuple> sorted = Materialize(rel);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  EXPECT_EQ(std::vector<Tuple>(reference.begin(), reference.end()), sorted);
  for (size_t i = 0; i < rel.size(); ++i) {
    EXPECT_TRUE(rel.tuple(i) == rel.tuples()[i]);
    EXPECT_TRUE(rel.Contains(rel.tuple(i)));
  }
}

TEST(LayoutEquivTest, RelationSwapFlatAndClearKeepCapacity) {
  Relation rel("R", 2);
  std::vector<ElemId> a = {0, 1, 2, 3};
  std::vector<ElemId> b = {5, 6};
  rel.SwapFlatUnchecked(a);
  ASSERT_EQ(rel.size(), 2u);
  EXPECT_TRUE(rel.Contains(Tuple{0, 1}));
  EXPECT_TRUE(rel.Contains(Tuple{2, 3}));
  // Swapping in `b` hands the previous {0,1,2,3} storage back out in `b`;
  // cycling it back in round-trips without reallocation.
  rel.SwapFlatUnchecked(b);
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains(Tuple{5, 6}));
  EXPECT_FALSE(rel.Contains(Tuple{0, 1}));
  EXPECT_EQ(b, (std::vector<ElemId>{0, 1, 2, 3}));
  rel.SwapFlatUnchecked(b);
  ASSERT_EQ(rel.size(), 2u);
  EXPECT_TRUE(rel.Contains(Tuple{2, 3}));

  const size_t bytes_before = rel.BytesResident();
  rel.ClearKeepCapacity();
  EXPECT_EQ(rel.size(), 0u);
  EXPECT_FALSE(rel.Contains(Tuple{0, 1}));
  EXPECT_EQ(rel.BytesResident(), bytes_before);  // capacity retained
  rel.Add({9, 9});
  EXPECT_TRUE(rel.Contains(Tuple{9, 9}));
  EXPECT_EQ(rel.size(), 1u);
}

// --- CSR incidence/adjacency vs naive references -----------------------------

void CheckGraphIndexes(const Structure& g) {
  const GaifmanGraph gg(g);
  const IncidenceIndex idx(g);
  for (ElemId e = 0; e < g.universe_size(); ++e) {
    // Naive adjacency: co-occurrence in any tuple of any relation.
    std::set<ElemId> naive_adj;
    std::vector<std::pair<uint32_t, uint32_t>> naive_inc;
    for (size_t r = 0; r < g.num_relations(); ++r) {
      const TupleList tuples = g.relation(r).tuples();
      for (size_t ti = 0; ti < tuples.size(); ++ti) {
        const TupleRef t = tuples[ti];
        if (std::find(t.begin(), t.end(), e) == t.end()) continue;
        naive_inc.emplace_back(static_cast<uint32_t>(r),
                               static_cast<uint32_t>(ti));
        for (ElemId other : t) {
          if (other != e) naive_adj.insert(other);
        }
      }
    }
    const auto nb = gg.Neighbors(e);
    std::vector<ElemId> got(nb.begin(), nb.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, std::vector<ElemId>(naive_adj.begin(), naive_adj.end()))
        << "adjacency mismatch at element " << e;
    EXPECT_EQ(gg.Degree(e), naive_adj.size());

    std::vector<std::pair<uint32_t, uint32_t>> inc;
    for (const IncidenceIndex::Entry& entry : idx.Incident(e)) {
      inc.emplace_back(entry.relation, entry.tuple_index);
    }
    std::sort(inc.begin(), inc.end());
    std::sort(naive_inc.begin(), naive_inc.end());
    EXPECT_EQ(inc, naive_inc) << "incidence mismatch at element " << e;
  }
}

TEST(LayoutEquivTest, IncidenceAndAdjacencyMatchNaiveScan) {
  Rng rng(11);
  CheckGraphIndexes(RandomBoundedDegreeGraph(300, 3, 900, false, rng));
  CheckGraphIndexes(GridGraph(9, 7));
}

TEST(LayoutEquivTest, SphereIntoMatchesAllocatingSphere) {
  Rng rng(13);
  const Structure g = RandomBoundedDegreeGraph(400, 4, 1200, false, rng);
  const GaifmanGraph gg(g);
  SphereScratch scratch;  // reused across every call below
  std::vector<ElemId> out;
  for (uint32_t rho = 0; rho <= 3; ++rho) {
    for (int i = 0; i < 50; ++i) {
      const ElemId a = static_cast<ElemId>(rng.Below(g.universe_size()));
      const ElemId b = static_cast<ElemId>(rng.Below(g.universe_size()));
      const Tuple c = {a, b};
      gg.SphereInto(c, rho, scratch, out);
      EXPECT_EQ(out, gg.Sphere(c, rho));
      gg.SphereInto({a}, rho, scratch, out);
      EXPECT_EQ(out, gg.Sphere(a, rho));
    }
  }
}

// --- Arena neighborhood extraction vs fresh extraction -----------------------

TEST(LayoutEquivTest, ArenaExtractionMatchesFreshAcrossRebinds) {
  Rng rng(17);
  const Structure g1 = RandomBoundedDegreeGraph(300, 3, 900, false, rng);
  const Structure g2 = GridGraph(10, 8);
  const GaifmanGraph gg1(g1), gg2(g2);
  const IncidenceIndex idx1(g1), idx2(g2);
  NeighborhoodScratch scratch;  // rebinds between structures
  for (int round = 0; round < 3; ++round) {
    const bool first = round % 2 == 0;
    const Structure& g = first ? g1 : g2;
    const GaifmanGraph& gg = first ? gg1 : gg2;
    const IncidenceIndex& idx = first ? idx1 : idx2;
    for (int i = 0; i < 40; ++i) {
      const Tuple c = {static_cast<ElemId>(rng.Below(g.universe_size()))};
      for (uint32_t rho = 0; rho <= 2; ++rho) {
        const Neighborhood fresh = ExtractNeighborhood(g, gg, idx, c, rho);
        const Neighborhood& arena =
            ExtractNeighborhoodInto(g, gg, idx, c, rho, scratch);
        EXPECT_EQ(arena.distinguished, fresh.distinguished);
        EXPECT_EQ(arena.global_ids, fresh.global_ids);
        EXPECT_TRUE(SameStructure(arena.local, fresh.local));
        EXPECT_EQ(CanonicalForm(arena.local, arena.distinguished),
                  CanonicalForm(fresh.local, fresh.distinguished));
      }
    }
  }
}

// --- Typing and planning: cached vs uncached, across threads -----------------

TEST(LayoutEquivTest, CachedTypingMatchesUncachedAcrossThreads) {
  ThreadGuard guard;
  Rng rng(19);
  const Structure random = RandomBoundedDegreeGraph(500, 3, 1500, false, rng);
  const Structure grid = GridGraph(14, 11);
  for (const Structure* g : {&random, &grid}) {
    std::vector<Tuple> domain;
    for (ElemId e = 0; e < g->universe_size(); ++e) domain.push_back({e});
    SetParallelThreads(1);
    NeighborhoodTyper uncached(*g, 2, nullptr);
    const std::vector<uint32_t> reference = uncached.TypeAll(domain);
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      SetParallelThreads(threads);
      CanonCache::Global().Clear();
      NeighborhoodTyper cached(*g, 2);
      EXPECT_EQ(cached.TypeAll(domain), reference);
      EXPECT_EQ(cached.NumTypes(), uncached.NumTypes());
      for (uint32_t ty = 0; ty < cached.NumTypes(); ++ty) {
        EXPECT_EQ(cached.Representative(ty), uncached.Representative(ty));
      }
    }
  }
}

TEST(LayoutEquivTest, PlansIdenticalAcrossCacheAndThreads) {
  ThreadGuard guard;
  Rng rng(23);
  const Structure g = RandomBoundedDegreeGraph(600, 3, 1800, false, rng);
  const auto query = AtomQuery::Adjacency("E");
  const QueryIndex index(g, *query, AllParams(g, 1));
  LocalSchemeOptions opts;
  opts.rho = 2;
  opts.epsilon = 0.5;
  opts.key = {23, 24};
  SetParallelThreads(1);
  LocalSchemeOptions uncached = opts;
  uncached.canon_cache = false;
  const LocalScheme reference = LocalScheme::Plan(index, uncached).ValueOrDie();
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SetParallelThreads(threads);
    CanonCache::Global().Clear();
    const LocalScheme plan = LocalScheme::Plan(index, opts).ValueOrDie();
    EXPECT_EQ(plan.CapacityBits(), reference.CapacityBits());
    EXPECT_EQ(plan.DistortionBound(), reference.DistortionBound());
    EXPECT_EQ(plan.NumTypes(), reference.NumTypes());
    EXPECT_EQ(plan.CanonicalParams(), reference.CanonicalParams());
    const auto& pa = plan.marking().pairs();
    const auto& pb = reference.marking().pairs();
    ASSERT_EQ(pa.size(), pb.size());
    for (size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(pa[i].plus, pb[i].plus);
      EXPECT_EQ(pa[i].minus, pb[i].minus);
    }
  }
}

// --- Detection: legacy ObservePairs vs scratch reuse vs DetectMany -----------

TEST(LayoutEquivTest, DetectionBitIdenticalAcrossPathsAndThreads) {
  ThreadGuard guard;
  Rng rng(29);
  const Structure g = RandomBoundedDegreeGraph(400, 4, 1200, false, rng);
  DistanceQuery query(2);
  SetParallelThreads(1);
  const QueryIndex index(g, query, AllParams(g, 1));
  const WeightMap weights = RandomWeights(g, 1000, 9999, rng);
  LocalSchemeOptions opts;
  opts.epsilon = 0.05;
  opts.key = {29, 30};
  opts.encoding = PairEncoding::kAntipodal;
  const LocalScheme scheme = LocalScheme::Plan(index, opts).ValueOrDie();
  const AdversarialScheme adv(scheme, 3);
  ASSERT_GT(adv.CapacityBits(), 0u);

  std::vector<std::unique_ptr<HonestServer>> servers;
  std::vector<const AnswerServer*> ptrs;
  for (size_t s = 0; s < 5; ++s) {
    BitVec msg(adv.CapacityBits());
    Rng msg_rng(100 + s);
    for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, msg_rng.Coin());
    servers.push_back(
        std::make_unique<HonestServer>(index, adv.Embed(weights, msg)));
    ptrs.push_back(servers.back().get());
  }

  // Every DetectOptions combination, legacy allocating path vs one
  // DetectScratch reused across all suspects and combinations (the epoch
  // logic must isolate runs without any clearing).
  DetectScratch scratch;
  for (const bool batch : {false, true}) {
    for (const bool dense : {false, true}) {
      DetectOptions d;
      d.batch_answers = batch;
      d.dense_views = dense;
      const LocalScheme::DetectContext ctx = scheme.MakeDetectContext(weights, d);
      for (const AnswerServer* s : ptrs) {
        const std::vector<PairObservation> legacy =
            scheme.ObservePairs(weights, *s, d);
        EXPECT_TRUE(
            SameObservations(legacy, scheme.ObservePairsInto(ctx, *s, scratch)))
            << "batch=" << batch << " dense=" << dense;
      }
    }
  }

  // DetectMany at every thread count == the serial Detect loop.
  std::vector<AdversarialDetection> reference;
  for (const AnswerServer* s : ptrs) {
    reference.push_back(adv.Detect(weights, *s).ValueOrDie());
  }
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SetParallelThreads(threads);
    const std::vector<AdversarialDetection> out = adv.DetectMany(weights, ptrs);
    ASSERT_EQ(out.size(), reference.size());
    for (size_t s = 0; s < out.size(); ++s) {
      EXPECT_TRUE(SameDetection(reference[s], out[s])) << "suspect " << s;
    }
  }
}

TEST(LayoutEquivTest, XmlTreeDetectionBitIdenticalAcrossPathsAndThreads) {
  ThreadGuard guard;
  Rng rng(31);
  const XmlDocument doc = RandomSchoolDocument(40, rng, 0, 20, 2);
  const EncodedXml enc = EncodeXml(doc, {"exam"}).ValueOrDie();
  const XPathQuery query =
      XPathQuery::Parse("school/student[firstname=$1]/exam").ValueOrDie();
  const TrackedDta dta = query.Compile(enc).ValueOrDie();
  const auto sigma = static_cast<uint32_t>(enc.sigma.size());
  TreeSchemeOptions opts;
  opts.key = {31, 32};
  opts.encoding = PairEncoding::kAntipodal;
  const TreeScheme scheme =
      TreeScheme::Plan(enc.tree, enc.tree.labels(), sigma, dta.dta, 1, opts)
          .ValueOrDie();
  const AdversarialScheme adv(scheme, 3);
  ASSERT_GT(adv.CapacityBits(), 0u);

  std::vector<std::unique_ptr<HonestTreeServer>> servers;
  std::vector<const AnswerServer*> ptrs;
  for (size_t s = 0; s < 4; ++s) {
    BitVec msg(adv.CapacityBits());
    Rng msg_rng(200 + s);
    for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, msg_rng.Coin());
    servers.push_back(std::make_unique<HonestTreeServer>(
        enc.tree, enc.tree.labels(), sigma, dta.dta, 1,
        adv.Embed(enc.weights, msg)));
    ptrs.push_back(servers.back().get());
  }

  DetectScratch scratch;
  for (const bool batch : {false, true}) {
    DetectOptions d;
    d.batch_answers = batch;
    const TreeScheme::DetectContext ctx =
        scheme.MakeDetectContext(enc.weights, d);
    for (const AnswerServer* s : ptrs) {
      const std::vector<PairObservation> legacy =
          scheme.ObservePairs(enc.weights, *s, d);
      EXPECT_TRUE(
          SameObservations(legacy, scheme.ObservePairsInto(ctx, *s, scratch)))
          << "batch=" << batch;
    }
  }

  std::vector<AdversarialDetection> reference;
  for (const AnswerServer* s : ptrs) {
    reference.push_back(adv.Detect(enc.weights, *s).ValueOrDie());
  }
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SetParallelThreads(threads);
    const std::vector<AdversarialDetection> out =
        adv.DetectMany(enc.weights, ptrs);
    ASSERT_EQ(out.size(), reference.size());
    for (size_t s = 0; s < out.size(); ++s) {
      EXPECT_TRUE(SameDetection(reference[s], out[s])) << "suspect " << s;
    }
  }
}

// --- CanonCache: fingerprint fast path and stats -----------------------------

TEST(LayoutEquivTest, CanonCacheIdsAndStatsConsistent) {
  CanonCache& cache = CanonCache::Global();
  cache.Clear();
  const Structure grid = GridGraph(10, 9);
  const GaifmanGraph gg(grid);
  const IncidenceIndex idx(grid);
  CanonKeyScratch key_scratch;
  NeighborhoodScratch nb_scratch;
  std::vector<uint32_t> ids;
  for (ElemId e = 0; e < grid.universe_size(); ++e) {
    const Neighborhood& nb =
        ExtractNeighborhoodInto(grid, gg, idx, {e}, 2, nb_scratch);
    const uint32_t id = cache.CanonicalId(nb.local, nb.distinguished, key_scratch);
    // The interned string behind the id is the true canonical form.
    EXPECT_EQ(cache.CanonicalOfId(id),
              CanonicalForm(nb.local, nb.distinguished));
    // Asking again is a hit and returns the same id.
    EXPECT_EQ(cache.CanonicalId(nb.local, nb.distinguished, key_scratch), id);
    ids.push_back(id);
  }
  const CanonCache::Stats stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  const std::set<uint32_t> distinct(ids.begin(), ids.end());
  EXPECT_EQ(stats.distinct_forms, distinct.size());
  EXPECT_GE(stats.entries, stats.distinct_forms);
  EXPECT_GT(stats.bytes_resident, 0u);
  EXPECT_GE(static_cast<double>(stats.shard_max), stats.shard_mean);
  EXPECT_GT(stats.shard_mean, 0.0);
}

}  // namespace
}  // namespace qpwm
