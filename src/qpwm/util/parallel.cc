#include "qpwm/util/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "qpwm/util/thread_annotations.h"

namespace qpwm {
namespace {

size_t DefaultThreads() {
  if (const char* env = std::getenv("QPWM_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v > 0) return static_cast<size_t>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// A plain generation-signalled pool: no work stealing, no per-task queues.
// Each Run() publishes one job (a chunk counter + body); workers and the
// caller claim chunk indices from the shared atomic counter until drained.
class ThreadPool {
 public:
  static ThreadPool& Global() {
    static ThreadPool* pool = new ThreadPool();  // leaked: workers may outlive main
    return *pool;
  }

  // Total threads participating in a Run (workers + caller).
  size_t threads() {
    std::lock_guard<std::mutex> lock(resize_mu_);
    return workers_.size() + 1;
  }

  void Resize(size_t total_threads) {
    std::lock_guard<std::mutex> lock(resize_mu_);
    const size_t want = total_threads == 0 ? 0 : total_threads - 1;
    if (want == workers_.size()) return;
    Shutdown();
    {
      std::lock_guard<std::mutex> job_lock(mu_);
      stop_ = false;
    }
    workers_.reserve(want);
    for (size_t i = 0; i < want; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void Run(size_t num_chunks, const std::function<void(size_t)>& body) {
    std::lock_guard<std::mutex> resize_lock(resize_mu_);
    std::exception_ptr error;
    std::mutex error_mu;
    const std::function<void(size_t)> guarded = [&](size_t chunk) {
      try {
        body(chunk);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!error) error = std::current_exception();
      }
    };

    if (workers_.empty()) {
      for (size_t c = 0; c < num_chunks; ++c) guarded(c);
    } else {
      {
        std::lock_guard<std::mutex> lock(mu_);
        body_ = &guarded;
        next_.store(0, std::memory_order_relaxed);
        num_chunks_ = num_chunks;
        active_ = workers_.size();
        ++generation_;
      }
      cv_work_.notify_all();
      Drain(guarded);
      std::unique_lock<std::mutex> lock(mu_);
      cv_done_.wait(lock, [this] { return active_ == 0; });
      body_ = nullptr;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  ThreadPool() = default;

  void Shutdown() QPWM_REQUIRES(resize_mu_) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& w : workers_) w.join();
    workers_.clear();
  }

  void Drain(const std::function<void(size_t)>& body);

  void WorkerLoop() {
    uint64_t seen = 0;
    for (;;) {
      const std::function<void(size_t)>* body;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        body = body_;
      }
      Drain(*body);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--active_ == 0) cv_done_.notify_all();
      }
    }
  }

  // Both mutexes stay std::mutex: cv_work_/cv_done_ are std::condition_variable
  // and need the standard type. The QPWM_GUARDED_BY annotations still document
  // (and lint-enforce) the locking discipline.
  std::mutex resize_mu_;  // serializes Resize/Run; threads() is cheap
  std::vector<std::thread> workers_ QPWM_GUARDED_BY(resize_mu_);

  std::mutex mu_;
  std::condition_variable cv_work_, cv_done_;
  uint64_t generation_ QPWM_GUARDED_BY(mu_) = 0;
  const std::function<void(size_t)>* body_ QPWM_GUARDED_BY(mu_) = nullptr;
  std::atomic<size_t> next_{0};
  size_t num_chunks_ QPWM_GUARDED_BY(mu_) = 0;
  size_t active_ QPWM_GUARDED_BY(mu_) = 0;
  bool stop_ QPWM_GUARDED_BY(mu_) = false;
};

// Set while a thread is executing chunk bodies; nested parallel calls from
// inside a body run inline instead of deadlocking on the pool.
thread_local bool t_in_parallel = false;

void ThreadPool::Drain(const std::function<void(size_t)>& body) {
  const bool was = t_in_parallel;
  t_in_parallel = true;
  for (;;) {
    const size_t c = next_.fetch_add(1, std::memory_order_relaxed);
    // qpwm-lint: allow(lock-discipline) -- num_chunks_ is frozen for the generation before cv_work_ wakes anyone; workers read it lock-free by design
    if (c >= num_chunks_) break;
    body(c);
  }
  t_in_parallel = was;
}

std::atomic<size_t> g_configured{0};  // 0 = unresolved
std::once_flag g_pool_built;

size_t ConfiguredThreads() {
  size_t n = g_configured.load(std::memory_order_acquire);
  if (n == 0) {
    n = DefaultThreads();
    size_t expected = 0;
    if (!g_configured.compare_exchange_strong(expected, n)) n = expected;
  }
  return n;
}

// Builds the pool on first parallel call (lazy: serial users never spawn).
ThreadPool& Pool() {
  ThreadPool& pool = ThreadPool::Global();
  std::call_once(g_pool_built, [&] { pool.Resize(ConfiguredThreads()); });
  return pool;
}

}  // namespace

size_t ParallelThreads() { return ConfiguredThreads(); }

void SetParallelThreads(size_t n) {
  const size_t resolved = n == 0 ? DefaultThreads() : n;
  g_configured.store(resolved, std::memory_order_release);
  ThreadPool::Global().Resize(resolved);
}

namespace internal {

void RunChunked(size_t num_chunks, const std::function<void(size_t)>& body) {
  if (num_chunks == 0) return;
  if (num_chunks == 1 || t_in_parallel || ConfiguredThreads() == 1) {
    for (size_t c = 0; c < num_chunks; ++c) body(c);
    return;
  }
  Pool().Run(num_chunks, body);
}

BlockPartition::BlockPartition(size_t n_items) : n(n_items) {
  const size_t threads = ConfiguredThreads();
  // 8x oversubscription smooths uneven per-index cost without work stealing;
  // the block layout is a pure function of (n, configured threads).
  blocks = threads == 1 ? 1 : std::min(n, threads * 8);
  if (blocks == 0) blocks = 1;
}

}  // namespace internal
}  // namespace qpwm
