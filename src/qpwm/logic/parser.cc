#include "qpwm/logic/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "qpwm/util/check.h"
#include "qpwm/util/str.h"
#include "qpwm/util/thread_annotations.h"

namespace qpwm {
namespace {

enum class TokKind { kIdent, kLParen, kRParen, kComma, kEq, kAnd, kOr, kNot, kImpl, kIff, kEnd };

struct Token {
  TokKind kind;
  std::string text;
  size_t pos;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> Lex() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < src_.size()) {
      char c = src_[i];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++i;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < src_.size() && (std::isalnum(static_cast<unsigned char>(src_[i])) ||
                                   src_[i] == '_' || src_[i] == '\'')) {
          ++i;
        }
        out.push_back({TokKind::kIdent, std::string(src_.substr(start, i - start)), start});
        continue;
      }
      switch (c) {
        case '(': out.push_back({TokKind::kLParen, "(", i}); ++i; break;
        case ')': out.push_back({TokKind::kRParen, ")", i}); ++i; break;
        case ',': out.push_back({TokKind::kComma, ",", i}); ++i; break;
        case '=': out.push_back({TokKind::kEq, "=", i}); ++i; break;
        case '&': out.push_back({TokKind::kAnd, "&", i}); ++i; break;
        case '|': out.push_back({TokKind::kOr, "|", i}); ++i; break;
        case '~': out.push_back({TokKind::kNot, "~", i}); ++i; break;
        case '-':
          if (i + 1 < src_.size() && src_[i + 1] == '>') {
            out.push_back({TokKind::kImpl, "->", i});
            i += 2;
            break;
          }
          return Status::ParseError(StrCat("stray '-' at position ", i));
        case '<':
          if (i + 2 < src_.size() && src_[i + 1] == '-' && src_[i + 2] == '>') {
            out.push_back({TokKind::kIff, "<->", i});
            i += 3;
            break;
          }
          return Status::ParseError(StrCat("stray '<' at position ", i));
        default:
          return Status::ParseError(StrCat("unexpected character '", c, "' at position ", i));
      }
    }
    out.push_back({TokKind::kEnd, "", src_.size()});
    return out;
  }

 private:
  // Views the caller's formula text; Lexer never outlives the ParseFormula
  // call that constructed it.
  std::string_view src_ QPWM_VIEW_OF(caller_text);
};

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<FormulaPtr> Parse() {
    auto f = ParseIff();
    if (!f.ok()) return f;
    if (Peek().kind != TokKind::kEnd) {
      return Status::ParseError(StrCat("trailing input at position ", Peek().pos));
    }
    return f;
  }

 private:
  const Token& Peek() const { return toks_[idx_]; }
  Token Take() { return toks_[idx_++]; }
  bool Accept(TokKind k) {
    if (Peek().kind == k) {
      ++idx_;
      return true;
    }
    return false;
  }

  Result<FormulaPtr> ParseIff() {
    auto lhs = ParseImpl();
    if (!lhs.ok()) return lhs;
    FormulaPtr acc = std::move(lhs).value();
    while (Accept(TokKind::kIff)) {
      auto rhs = ParseImpl();
      if (!rhs.ok()) return rhs;
      FormulaPtr r = std::move(rhs).value();
      // a <-> b  ==  (~a | b) & (~b | a)
      FormulaPtr fwd = MakeOr(MakeNot(acc->Clone()), r->Clone());
      FormulaPtr bwd = MakeOr(MakeNot(std::move(r)), std::move(acc));
      acc = MakeAnd(std::move(fwd), std::move(bwd));
    }
    return acc;
  }

  Result<FormulaPtr> ParseImpl() {
    auto lhs = ParseOr();
    if (!lhs.ok()) return lhs;
    if (Accept(TokKind::kImpl)) {
      auto rhs = ParseImpl();  // right-associative
      if (!rhs.ok()) return rhs;
      return MakeOr(MakeNot(std::move(lhs).value()), std::move(rhs).value());
    }
    return lhs;
  }

  Result<FormulaPtr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    FormulaPtr acc = std::move(lhs).value();
    while (Accept(TokKind::kOr)) {
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      acc = MakeOr(std::move(acc), std::move(rhs).value());
    }
    return acc;
  }

  Result<FormulaPtr> ParseAnd() {
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    FormulaPtr acc = std::move(lhs).value();
    while (Accept(TokKind::kAnd)) {
      auto rhs = ParseUnary();
      if (!rhs.ok()) return rhs;
      acc = MakeAnd(std::move(acc), std::move(rhs).value());
    }
    return acc;
  }

  Result<FormulaPtr> ParseUnary() {
    if (Accept(TokKind::kNot)) {
      auto inner = ParseUnary();
      if (!inner.ok()) return inner;
      return MakeNot(std::move(inner).value());
    }
    if (Peek().kind == TokKind::kIdent) {
      const std::string& word = Peek().text;
      if (word == "exists" || word == "forall" || word == "existsset" ||
          word == "forallset") {
        Take();
        if (Peek().kind != TokKind::kIdent) {
          return Status::ParseError(
              StrCat("expected variable after quantifier at position ", Peek().pos));
        }
        std::string var = Take().text;
        auto body = ParseUnary();
        if (!body.ok()) return body;
        if (word == "exists") return MakeExists(std::move(var), std::move(body).value());
        if (word == "forall") return MakeForall(std::move(var), std::move(body).value());
        if (word == "existsset") {
          return MakeExistsSet(std::move(var), std::move(body).value());
        }
        return MakeForallSet(std::move(var), std::move(body).value());
      }
    }
    return ParsePrimary();
  }

  Result<FormulaPtr> ParsePrimary() {
    if (Accept(TokKind::kLParen)) {
      auto f = ParseIff();
      if (!f.ok()) return f;
      if (!Accept(TokKind::kRParen)) {
        return Status::ParseError(StrCat("expected ')' at position ", Peek().pos));
      }
      return f;
    }
    if (Peek().kind != TokKind::kIdent) {
      return Status::ParseError(StrCat("expected formula at position ", Peek().pos));
    }
    std::string first = Take().text;

    if (Accept(TokKind::kLParen)) {  // atom R(x, y, ...)
      std::vector<std::string> args;
      if (Peek().kind != TokKind::kRParen) {
        for (;;) {
          if (Peek().kind != TokKind::kIdent) {
            return Status::ParseError(
                StrCat("expected variable in atom at position ", Peek().pos));
          }
          args.push_back(Take().text);
          if (!Accept(TokKind::kComma)) break;
        }
      }
      if (!Accept(TokKind::kRParen)) {
        return Status::ParseError(StrCat("expected ')' at position ", Peek().pos));
      }
      return MakeAtom(std::move(first), std::move(args));
    }
    if (Accept(TokKind::kEq)) {  // x = y
      if (Peek().kind != TokKind::kIdent) {
        return Status::ParseError(StrCat("expected variable after '=' at position ", Peek().pos));
      }
      return MakeEq(std::move(first), Take().text);
    }
    if (Peek().kind == TokKind::kIdent && Peek().text == "in") {  // x in X
      Take();
      if (Peek().kind != TokKind::kIdent) {
        return Status::ParseError(
            StrCat("expected set variable after 'in' at position ", Peek().pos));
      }
      return MakeSetMember(std::move(first), Take().text);
    }
    return Status::ParseError(StrCat("dangling identifier '", first, "'"));
  }

  std::vector<Token> toks_;
  size_t idx_ = 0;
};

}  // namespace

Result<FormulaPtr> ParseFormula(std::string_view text) {
  auto toks = Lexer(text).Lex();
  if (!toks.ok()) return toks.status();
  return Parser(std::move(toks).value()).Parse();
}

FormulaPtr MustParseFormula(std::string_view text) {
  auto f = ParseFormula(text);
  QPWM_CHECK(f.ok());
  return std::move(f).value();
}

}  // namespace qpwm
