// qpwm_faultgen — fault-injection campaign against the adversarial scheme.
//
// Sweeps structural attacks (pair-element deletion at 0..90%, spurious tuple
// insertion, and combined mixes) over seeded trials on a synthetic workload,
// and emits a JSON survival-curve report: per attack level, the fraction of
// trials where the full mark was recovered, where every recovered bit was
// correct, and the mean erasure / margin statistics.
//
// Flags (all optional):
//   --elements N     universe size of the random workload      (default 400)
//   --redundancy R   pairs per message bit                     (default 5)
//   --trials T       seeded trials per attack level            (default 20)
//   --seed S         campaign base seed                        (default 1)
//   --out F          JSON report path                          (default stdout)
//
// Exit codes follow the CLI contract: 0 = campaign ran, 2 = usage/I/O error.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "qpwm/core/adversarial.h"
#include "qpwm/core/attack.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"

using namespace qpwm;

namespace {

struct Options {
  size_t elements = 400;
  size_t redundancy = 5;
  size_t trials = 20;
  uint64_t seed = 1;
  std::string out;  // empty = stdout
};

struct TrialOutcome {
  bool full_mark = false;       // complete() and mark == message
  bool recovered_correct = false;  // every non-erased bit matches
  size_t bits_erased = 0;
  size_t pairs_erased = 0;
  double min_margin = 0;
};

struct LevelSummary {
  double deletion_frac = 0;
  double insertion_frac = 0;
  size_t trials = 0;
  size_t full_mark = 0;
  size_t recovered_correct = 0;
  double mean_bits_erased = 0;
  double mean_pairs_erased = 0;
  double mean_min_margin = 0;
};

// One seeded trial: fresh workload, random message, structural attack through
// a TamperedAnswerServer, erasure-aware detection.
TrialOutcome RunTrial(const Options& opt, double deletion_frac,
                      double insertion_frac, uint64_t seed) {
  Rng rng(seed);
  Structure g = RandomBoundedDegreeGraph(opt.elements, 3, 3 * opt.elements,
                                         false, rng);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));
  WeightMap weights = RandomWeights(g, 1000, 9999, rng);

  LocalSchemeOptions scheme_opts;
  scheme_opts.epsilon = 0.25;
  scheme_opts.key = {seed, seed + 1};
  scheme_opts.encoding = PairEncoding::kAntipodal;
  auto scheme = LocalScheme::Plan(index, scheme_opts);
  QPWM_CHECK(scheme.ok());
  AdversarialScheme adv(scheme.value(), opt.redundancy);
  if (adv.CapacityBits() == 0) return {};

  BitVec msg(adv.CapacityBits());
  for (size_t i = 0; i < msg.size(); ++i) msg.Set(i, rng.Coin());
  WeightMap marked = adv.Embed(weights, msg);

  HonestServer base(index, marked);
  TamperedAnswerServer server(base);
  for (const Tuple& t : SubsetDeletionAttack(index, deletion_frac, rng)) {
    server.Erase(t);
  }
  const size_t insertions =
      static_cast<size_t>(insertion_frac * static_cast<double>(index.num_active()));
  TupleInsertionAttack(server, index, marked, insertions, rng);

  auto detection = adv.Detect(weights, server);
  QPWM_CHECK(detection.ok());  // never fails: partial results, not errors
  const AdversarialDetection& d = detection.value();

  TrialOutcome out;
  out.bits_erased = d.bits_erased;
  out.pairs_erased = d.pairs_erased;
  out.min_margin = d.min_margin;
  out.recovered_correct = true;
  for (size_t i = 0; i < d.mark.size(); ++i) {
    if (!d.bit_erased[i] && d.mark.Get(i) != msg.Get(i)) {
      out.recovered_correct = false;
    }
  }
  out.full_mark = d.complete() && d.mark == msg;
  return out;
}

LevelSummary RunLevel(const Options& opt, double deletion_frac,
                      double insertion_frac, uint64_t level_tag) {
  LevelSummary s;
  s.deletion_frac = deletion_frac;
  s.insertion_frac = insertion_frac;
  s.trials = opt.trials;
  for (size_t t = 0; t < opt.trials; ++t) {
    TrialOutcome o = RunTrial(opt, deletion_frac, insertion_frac,
                              opt.seed + level_tag * 1000003 + t);
    s.full_mark += o.full_mark;
    s.recovered_correct += o.recovered_correct;
    s.mean_bits_erased += static_cast<double>(o.bits_erased);
    s.mean_pairs_erased += static_cast<double>(o.pairs_erased);
    s.mean_min_margin += o.min_margin;
  }
  const double n = static_cast<double>(opt.trials);
  s.mean_bits_erased /= n;
  s.mean_pairs_erased /= n;
  s.mean_min_margin /= n;
  return s;
}

void AppendLevelJson(std::ostringstream& json, const LevelSummary& s,
                     bool last) {
  const double n = static_cast<double>(s.trials);
  json << "    {\"deletion_frac\": " << s.deletion_frac
       << ", \"insertion_frac\": " << s.insertion_frac
       << ", \"trials\": " << s.trials
       << ", \"full_mark_rate\": " << static_cast<double>(s.full_mark) / n
       << ", \"recovered_correct_rate\": "
       << static_cast<double>(s.recovered_correct) / n
       << ", \"mean_bits_erased\": " << s.mean_bits_erased
       << ", \"mean_pairs_erased\": " << s.mean_pairs_erased
       << ", \"mean_min_margin\": " << s.mean_min_margin << "}"
       << (last ? "\n" : ",\n");
}

int Run(const Options& opt) {
  std::ostringstream json;
  json << "{\n";
  json << "  \"workload\": {\"elements\": " << opt.elements
       << ", \"redundancy\": " << opt.redundancy
       << ", \"trials\": " << opt.trials << ", \"seed\": " << opt.seed
       << "},\n";

  // Campaign 1: deletion sweep 0..90%.
  std::cerr << "deletion sweep";
  json << "  \"deletion_sweep\": [\n";
  for (int i = 0; i <= 9; ++i) {
    std::cerr << " " << i * 10 << "%" << std::flush;
    AppendLevelJson(json, RunLevel(opt, i * 0.1, 0.0, static_cast<uint64_t>(i)),
                    i == 9);
  }
  json << "  ],\n";
  std::cerr << "\n";

  // Campaign 2: insertion sweep (spurious rows relative to the active set).
  std::cerr << "insertion sweep";
  json << "  \"insertion_sweep\": [\n";
  for (int i = 0; i <= 4; ++i) {
    std::cerr << " " << i * 25 << "%" << std::flush;
    AppendLevelJson(json,
                    RunLevel(opt, 0.0, i * 0.25, 100 + static_cast<uint64_t>(i)),
                    i == 4);
  }
  json << "  ],\n";
  std::cerr << "\n";

  // Campaign 3: combined deletion + insertion mixes.
  std::cerr << "mixed sweep";
  json << "  \"mixed_sweep\": [\n";
  const double mixes[][2] = {{0.1, 0.1}, {0.3, 0.25}, {0.5, 0.5}, {0.7, 0.5}};
  for (size_t i = 0; i < 4; ++i) {
    std::cerr << " " << mixes[i][0] << "/" << mixes[i][1] << std::flush;
    AppendLevelJson(json,
                    RunLevel(opt, mixes[i][0], mixes[i][1],
                             200 + static_cast<uint64_t>(i)),
                    i == 3);
  }
  json << "  ]\n}\n";
  std::cerr << "\n";

  if (opt.out.empty()) {
    std::cout << json.str();
    return 0;
  }
  std::ofstream f(opt.out, std::ios::binary);
  if (!f) {
    std::cerr << "cannot write " << opt.out << "\n";
    return 2;
  }
  f << json.str();
  std::cerr << "wrote " << opt.out << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; i += 2) {
    std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::cerr << flag << " requires a value\n"
                << "usage: qpwm_faultgen [--elements N] [--redundancy R]\n"
                   "       [--trials T] [--seed S] [--out report.json]\n";
      return 2;
    }
    std::string value = argv[i + 1];
    if (flag == "--elements") {
      opt.elements = std::strtoull(value.c_str(), nullptr, 10);
    } else if (flag == "--redundancy") {
      opt.redundancy = std::strtoull(value.c_str(), nullptr, 10);
    } else if (flag == "--trials") {
      opt.trials = std::strtoull(value.c_str(), nullptr, 10);
    } else if (flag == "--seed") {
      opt.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (flag == "--out") {
      opt.out = value;
    } else {
      std::cerr << "usage: qpwm_faultgen [--elements N] [--redundancy R]\n"
                   "       [--trials T] [--seed S] [--out report.json]\n";
      return 2;
    }
  }
  if (opt.elements == 0 || opt.redundancy == 0 || opt.trials == 0) {
    std::cerr << "--elements, --redundancy and --trials must be positive\n";
    return 2;
  }
  return Run(opt);
}
