// Canonical forms and isomorphism of small distinguished structures.
//
// Used to classify rho-neighborhoods into isomorphism types (the ~rho
// classes of Section 3). The canonicalizer is an individualization-
// refinement search (color refinement on the relational hypergraph, then
// backtracking over cell choices, keeping the lexicographically least
// encoding) with twin pruning for interchangeable elements. It is exact; a
// node budget guards against pathological inputs — neighborhoods of
// bounded-degree structures refine almost immediately.
#ifndef QPWM_STRUCTURE_ISOMORPHISM_H_
#define QPWM_STRUCTURE_ISOMORPHISM_H_

#include <string>

#include "qpwm/structure/structure.h"

namespace qpwm {

/// Canonical encoding of `s` with the ordered tuple `distinguished` marked:
/// two (structure, tuple) pairs get equal encodings iff there is an
/// isomorphism between them mapping distinguished tuples pointwise in order.
std::string CanonicalForm(const Structure& s, const Tuple& distinguished);

/// Isomorphism test via canonical forms.
bool AreIsomorphic(const Structure& s1, const Tuple& d1, const Structure& s2,
                   const Tuple& d2);

}  // namespace qpwm

#endif  // QPWM_STRUCTURE_ISOMORPHISM_H_
