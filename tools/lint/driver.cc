// File discovery and the two-pass run for qpwm_lint.
//
// The file set is the union of the TUs named in compile_commands.json (when
// given) and a walk of src/tools/tests/bench/examples under --root picking up
// headers and sources. Explicit paths bypass the walk (and its fixture
// exclusion), which is how the self-tests lint known-bad snippets.
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "lint.h"

namespace qpwm::lint {
namespace {

namespace fs = std::filesystem;

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

bool IsExcluded(const std::string& path) {
  // Known-bad lint fixtures and build trees are never part of a tree walk.
  return path.find("lint_fixtures") != std::string::npos ||
         path.find("/build") != std::string::npos ||
         path.find("build/") == 0;
}

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

void WalkDir(const fs::path& dir, bool skip_excluded,
             std::vector<std::string>& out) {
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec) || !IsSourceFile(it->path())) continue;
    std::string p = it->path().generic_string();
    if (skip_excluded && IsExcluded(p)) continue;
    out.push_back(std::move(p));
  }
}

// Pulls every "file" value out of compile_commands.json with a minimal
// string scanner (the format is machine-written; full JSON is not needed).
bool FilesFromCompileCommands(const std::string& path,
                              std::vector<std::string>& out) {
  std::string text;
  if (!ReadFile(path, text)) return false;
  size_t i = 0;
  while ((i = text.find("\"file\"", i)) != std::string::npos) {
    i += 6;
    while (i < text.size() && (text[i] == ' ' || text[i] == ':')) ++i;
    if (i >= text.size() || text[i] != '"') continue;
    ++i;
    std::string value;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) ++i;
      value += text[i++];
    }
    if (IsSourceFile(fs::path(value)) && !IsExcluded(value)) {
      out.push_back(std::move(value));
    }
  }
  return true;
}

}  // namespace

bool RunLint(const DriverOptions& opt, DriverResult& result) {
  std::vector<std::string> files;
  if (!opt.paths.empty()) {
    for (const std::string& p : opt.paths) {
      std::error_code ec;
      if (fs::is_directory(p, ec)) {
        WalkDir(p, /*skip_excluded=*/true, files);
      } else if (fs::is_regular_file(p, ec)) {
        files.push_back(p);  // explicit files are always linted
      } else {
        return false;
      }
    }
  } else {
    if (!opt.compile_commands.empty() &&
        !FilesFromCompileCommands(opt.compile_commands, files)) {
      return false;
    }
    for (const char* sub : {"src", "tools", "tests", "bench", "examples"}) {
      const fs::path dir = fs::path(opt.root) / sub;
      std::error_code ec;
      if (fs::is_directory(dir, ec)) WalkDir(dir, /*skip_excluded=*/true, files);
    }
  }
  // Dedup by canonical path so compile_commands + walk overlap lints once.
  std::vector<std::pair<std::string, std::string>> canon;  // (canonical, as-given)
  for (std::string& f : files) {
    std::error_code ec;
    fs::path c = fs::weakly_canonical(f, ec);
    canon.emplace_back(ec ? f : c.generic_string(), std::move(f));
  }
  std::sort(canon.begin(), canon.end());
  canon.erase(std::unique(canon.begin(), canon.end(),
                          [](const auto& a, const auto& b) {
                            return a.first == b.first;
                          }),
              canon.end());

  const auto run_start = std::chrono::steady_clock::now();
  const auto ms_since = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  IndexCache cache;
  if (!opt.index_cache.empty()) cache = LoadIndexCache(opt.index_cache);

  // Pass 1. Per file: an mtime match trusts the cached symbols without
  // reading; otherwise a content-hash match still reuses them (mtime churn
  // from fresh checkouts); only genuinely changed files are re-scanned.
  struct FileState {
    std::string given;   // path as discovered (used for I/O)
    std::string key;     // normalized path (cache + report key)
    int64_t mtime = 0;
    uint64_t hash = 0;   // 0 until the content has been read
    bool dirty = false;  // symbols re-computed this run
    std::optional<FileScan> scan;  // populated lazily
  };
  const auto pass1_start = std::chrono::steady_clock::now();
  std::vector<FileState> states;
  states.reserve(canon.size());
  LintContext ctx;
  IndexCache next_cache;
  for (const auto& [canonical, given] : canon) {
    FileState st;
    st.given = given;
    std::string key = given;
    std::replace(key.begin(), key.end(), '\\', '/');
    st.key = key;
    std::error_code ec;
    const auto ftime = fs::last_write_time(given, ec);
    if (ec) continue;
    st.mtime = static_cast<int64_t>(ftime.time_since_epoch().count());

    const auto cached = cache.find(st.key);
    bool reused = false;
    if (cached != cache.end() && cached->second.mtime == st.mtime) {
      reused = true;  // trusted without a read
      st.hash = cached->second.hash;
    } else {
      std::string text;
      if (!ReadFile(given, text)) continue;  // e.g. removed generated TU
      st.hash = HashContent(text);
      if (cached != cache.end() && cached->second.hash == st.hash) {
        reused = true;  // same content, new mtime
      } else {
        st.scan = ScanSource(given, text);
        st.dirty = true;
      }
    }
    CachedFile entry;
    if (reused) {
      entry = cached->second;
      entry.mtime = st.mtime;
      ++result.files_from_cache;
    } else {
      entry.mtime = st.mtime;
      entry.hash = st.hash;
      entry.symbols = CollectFileSymbols(*st.scan);
    }
    MergeSymbols(entry.symbols, ctx);
    next_cache[st.key] = std::move(entry);
    states.push_back(std::move(st));
  }
  FinalizeContext(ctx);
  const uint64_t digest = ContextDigest(ctx);
  result.index_ms = ms_since(pass1_start);
  result.files_scanned = states.size();

  // Pass 2: findings are reusable only for unchanged files analyzed under
  // the identical merged context (any edit anywhere invalidates cross-TU
  // findings everywhere, which the digest captures).
  std::vector<Finding> findings;
  for (FileState& st : states) {
    CachedFile& entry = next_cache[st.key];
    if (!st.dirty && entry.ctx_digest == digest) {
      findings.insert(findings.end(), entry.findings.begin(),
                      entry.findings.end());
      ++result.findings_from_cache;
      continue;
    }
    if (!st.scan.has_value()) {
      std::string text;
      if (!ReadFile(st.given, text)) continue;
      st.scan = ScanSource(st.given, text);
    }
    std::vector<Finding> file_findings;
    AnalyzeFile(*st.scan, ctx, file_findings, &result.rule_ms);
    entry.ctx_digest = digest;
    entry.findings = file_findings;
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
  }

  if (!opt.index_cache.empty()) {
    SaveIndexCache(opt.index_cache, next_cache);  // best-effort persistence
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  for (Finding& f : findings) {
    (IsAdvisoryRule(f.rule) ? result.warnings : result.errors)
        .push_back(std::move(f));
  }
  result.total_ms = ms_since(run_start);
  return true;
}

bool WriteReport(const std::string& path, const DriverResult& result) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  auto escape = [](const std::string& s) {
    std::string e;
    for (char c : s) {
      if (c == '"' || c == '\\') e += '\\';
      e += c;
    }
    return e;
  };
  auto emit = [&](const std::vector<Finding>& fs, const char* key,
                  bool trailing_comma) {
    out << "  \"" << key << "\": [\n";
    for (size_t i = 0; i < fs.size(); ++i) {
      out << "    {\"file\": \"" << escape(fs[i].file)
          << "\", \"line\": " << fs[i].line << ", \"rule\": \"" << fs[i].rule
          << "\", \"message\": \"" << escape(fs[i].message) << "\"}"
          << (i + 1 < fs.size() ? "," : "") << "\n";
    }
    out << "  ]" << (trailing_comma ? "," : "") << "\n";
  };
  out << "{\n  \"schema_version\": " << kReportSchemaVersion << ",\n";
  out << "  \"files_scanned\": " << result.files_scanned << ",\n";
  out << "  \"files_from_cache\": " << result.files_from_cache << ",\n";
  out << "  \"findings_from_cache\": " << result.findings_from_cache << ",\n";
  out << "  \"index_ms\": " << result.index_ms << ",\n";
  out << "  \"total_ms\": " << result.total_ms << ",\n";
  out << "  \"rule_ms\": {";
  bool first = true;
  for (const auto& [rule, ms] : result.rule_ms) {
    out << (first ? "" : ",") << "\n    \"" << escape(rule) << "\": " << ms;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n";
  emit(result.errors, "errors", true);
  emit(result.warnings, "warnings", false);
  out << "}\n";
  return static_cast<bool>(out);
}

}  // namespace qpwm::lint
