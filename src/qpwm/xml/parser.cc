#include "qpwm/xml/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "qpwm/util/check.h"
#include "qpwm/util/str.h"
#include "qpwm/util/thread_annotations.h"

namespace qpwm {
namespace {

class Parser {
 public:
  Parser(std::string_view in, const XmlParseLimits& limits)
      : in_(in), limits_(limits) {}

  Result<XmlDocument> Parse() {
    if (limits_.max_bytes > 0 && in_.size() > limits_.max_bytes) {
      return Status::ParseError(StrCat("document size ", in_.size(),
                                       " exceeds limit ", limits_.max_bytes));
    }
    SkipProlog();
    auto root = ParseElement(1);
    if (!root.ok()) return root.status();
    SkipWhitespaceAndComments();
    if (pos_ != in_.size()) {
      return Status::ParseError(StrCat("trailing content at offset ", pos_));
    }
    doc_.SetRoot(root.value());
    return std::move(doc_);
  }

 private:
  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }
  bool Starts(std::string_view prefix) const {
    return in_.substr(pos_, prefix.size()) == prefix;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  void SkipWhitespaceAndComments() {
    for (;;) {
      SkipWhitespace();
      if (Starts("<!--")) {
        size_t end = in_.find("-->", pos_ + 4);
        pos_ = end == std::string_view::npos ? in_.size() : end + 3;
        continue;
      }
      break;
    }
  }

  void SkipProlog() {
    SkipWhitespace();
    if (Starts("<?xml")) {
      size_t end = in_.find("?>", pos_);
      pos_ = end == std::string_view::npos ? in_.size() : end + 2;
    }
    SkipWhitespaceAndComments();
    if (Starts("<!DOCTYPE")) {
      size_t end = in_.find('>', pos_);
      pos_ = end == std::string_view::npos ? in_.size() : end + 1;
    }
    SkipWhitespaceAndComments();
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_' || Peek() == '-' || Peek() == ':' ||
                        Peek() == '.')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError(StrCat("expected name at offset ", pos_));
    }
    return std::string(in_.substr(start, pos_ - start));
  }

  Result<std::string> DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return Status::ParseError("unterminated entity");
      }
      std::string_view name = raw.substr(i + 1, semi - i - 1);
      if (name == "lt") {
        out += '<';
      } else if (name == "gt") {
        out += '>';
      } else if (name == "amp") {
        out += '&';
      } else if (name == "quot") {
        out += '"';
      } else if (name == "apos") {
        out += '\'';
      } else {
        return Status::ParseError(StrCat("unknown entity &", std::string(name), ";"));
      }
      i = semi;
    }
    return out;
  }

  Result<XmlNodeId> ParseElement(size_t depth) {
    if (limits_.max_depth > 0 && depth > limits_.max_depth) {
      return Status::ParseError(StrCat("nesting depth exceeds limit ",
                                       limits_.max_depth, " at offset ", pos_));
    }
    if (AtEnd() || Peek() != '<') {
      return Status::ParseError(StrCat("expected '<' at offset ", pos_));
    }
    ++pos_;
    auto tag = ParseName();
    if (!tag.ok()) return tag.status();
    XmlNodeId elem = doc_.AddElement(tag.value());

    // Attributes.
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Status::ParseError("unterminated start tag");
      if (Peek() == '>' || Starts("/>")) break;
      auto attr_name = ParseName();
      if (!attr_name.ok()) return attr_name.status();
      SkipWhitespace();
      if (AtEnd() || Peek() != '=') {
        return Status::ParseError(StrCat("expected '=' at offset ", pos_));
      }
      ++pos_;
      SkipWhitespace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Status::ParseError(StrCat("expected quoted value at offset ", pos_));
      }
      char quote = Peek();
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && Peek() != quote) ++pos_;
      if (AtEnd()) return Status::ParseError("unterminated attribute value");
      auto value = DecodeEntities(in_.substr(start, pos_ - start));
      if (!value.ok()) return value.status();
      ++pos_;
      doc_.AddAttribute(elem, std::move(attr_name).value(), std::move(value).value());
    }

    if (Starts("/>")) {
      pos_ += 2;
      return elem;
    }
    ++pos_;  // '>'

    // Content.
    for (;;) {
      size_t text_start = pos_;
      while (!AtEnd() && Peek() != '<') ++pos_;
      if (pos_ > text_start) {
        auto text = DecodeEntities(in_.substr(text_start, pos_ - text_start));
        if (!text.ok()) return text.status();
        std::string_view stripped = StripWhitespace(text.value());
        if (!stripped.empty()) {
          doc_.AppendChild(elem, doc_.AddText(std::string(stripped)));
        }
      }
      if (AtEnd()) return Status::ParseError("unterminated element <" + tag.value() + ">");
      if (Starts("<!--")) {
        size_t end = in_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) return Status::ParseError("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      if (Starts("</")) {
        pos_ += 2;
        auto close = ParseName();
        if (!close.ok()) return close.status();
        if (close.value() != tag.value()) {
          return Status::ParseError("mismatched close tag </" + close.value() +
                                    "> for <" + tag.value() + ">");
        }
        SkipWhitespace();
        if (AtEnd() || Peek() != '>') {
          return Status::ParseError(StrCat("expected '>' at offset ", pos_));
        }
        ++pos_;
        return elem;
      }
      auto child = ParseElement(depth + 1);
      if (!child.ok()) return child.status();
      doc_.AppendChild(elem, child.value());
    }
  }

  // Views the caller's document text; the Parser lives only for one
  // ParseXml call.
  std::string_view in_ QPWM_VIEW_OF(caller_text);
  XmlParseLimits limits_;
  size_t pos_ = 0;
  XmlDocument doc_;
};

}  // namespace

Result<XmlDocument> ParseXml(std::string_view input, const XmlParseLimits& limits) {
  return Parser(input, limits).Parse();
}

XmlDocument MustParseXml(std::string_view input) {
  auto doc = ParseXml(input);
  QPWM_CHECK(doc.ok());
  return std::move(doc).value();
}

}  // namespace qpwm
