// Update-stream model: the typed mutations a long-running watermarked
// server ingests, and the seeded generator that produces the mixed honest +
// hostile traffic the soak harness drives.
//
// Honest traffic exercises the paper's Section 5 maintenance guarantees:
// weights-only refreshes (Theorem 7 — the mark delta rides along) and
// type-preserving structural churn (Theorem 8 — edge 2-swaps that keep every
// rho-neighborhood type). Hostile traffic is the production threat mix the
// SPSW line of work models: in-range weight tampering on the served copy,
// fake-tuple injection (both out-of-universe rows and in-universe rows that
// would change neighborhood types), shape-malformed updates, and correlated
// deletion bursts. The generator is fully seeded — the same seed replays the
// same stream against the same evolving structure, which is what makes the
// soak report byte-identical across thread counts.
#ifndef QPWM_STREAM_UPDATE_H_
#define QPWM_STREAM_UPDATE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "qpwm/core/incremental.h"
#include "qpwm/structure/structure.h"
#include "qpwm/structure/weighted.h"
#include "qpwm/util/random.h"

namespace qpwm {

enum class UpdateKind : uint8_t {
  kWeightRefresh = 0,  // owner maintenance: weights-only update (Theorem 7)
  kEdgeSwap,           // owner maintenance: structural 2-swap (Theorem 8 gate)
  kWeightWrite,        // hostile: in-range weight tamper on the served copy
  kFakeTuple,          // hostile: SPSW-style fake-row injection
  kMalformed,          // hostile: shape-invalid update
  kBurstDelete,        // hostile: correlated deletion burst
};
inline constexpr size_t kNumUpdateKinds = 6;

/// Stable name for reports ("weight_refresh", "edge_swap", ...).
const char* UpdateKindName(UpdateKind kind);

/// True for the kinds the hostile mix produces. Hostility is an accounting
/// label, not a server-visible property: an in-range weight write is
/// indistinguishable from maintenance and gets applied; the quarantine gates
/// catch hostile updates by their *effects* (shape, domain, type breakage).
bool IsHostileKind(UpdateKind kind);

/// One stream mutation. Weight kinds carry (elem, delta); structural kinds
/// carry a batch of edits that is admitted or quarantined atomically.
struct Update {
  UpdateKind kind = UpdateKind::kWeightRefresh;
  /// Weight edits (kWeightRefresh / kWeightWrite): element and signed delta.
  ElemId elem = 0;
  Weight delta = 0;
  /// Structural edits (the remaining kinds), one atomic unit per update.
  std::vector<StructuralUpdate> edits;
};

struct UpdateMixOptions {
  /// Fraction of hostile updates in the stream (acceptance criteria soak
  /// runs with at least 0.10).
  double hostile_frac = 0.15;
  /// Probability an honest update is structural churn (an edge 2-swap)
  /// rather than a weights-only refresh.
  double honest_structural_frac = 0.10;
  /// Weights-only refreshes draw their delta uniformly from
  /// [-refresh_magnitude, refresh_magnitude].
  Weight refresh_magnitude = 10;
  /// Hostile weight writes draw from [-write_magnitude, write_magnitude]
  /// excluding 0 (a 0-write would be a no-op, not an attack).
  Weight write_magnitude = 1;
  /// Tuples per correlated deletion burst.
  size_t burst_len = 8;
};

/// Seeded generator of the mixed stream. Structural picks read the *current*
/// live structure (the stream evolves it), so the generator and the server
/// must advance in lockstep — which the driver guarantees by running
/// generation and submission in one lane.
///
/// Structural kinds target binary-relation (graph) workloads; on a structure
/// whose first relation is not binary or has too few tuples, structural
/// draws degrade to weight refreshes.
class UpdateGenerator {
 public:
  explicit UpdateGenerator(uint64_t seed, UpdateMixOptions options = {});

  /// Draws the next update against the current live structure.
  Update Next(const Structure& g);

  uint64_t generated() const { return generated_; }
  const std::array<uint64_t, kNumUpdateKinds>& generated_by_kind() const {
    return generated_by_kind_;
  }
  uint64_t hostile_generated() const { return hostile_generated_; }

 private:
  Update WeightRefresh(const Structure& g);
  Update EdgeSwap(const Structure& g);
  Update WeightWrite(const Structure& g);
  Update FakeTuple(const Structure& g);
  Update Malformed(const Structure& g);
  Update BurstDelete(const Structure& g);

  Rng rng_;
  UpdateMixOptions options_;
  uint64_t generated_ = 0;
  uint64_t hostile_generated_ = 0;
  std::array<uint64_t, kNumUpdateKinds> generated_by_kind_{};
};

}  // namespace qpwm

#endif  // QPWM_STREAM_UPDATE_H_
