// Dynamic bit vector used for marks (the l-bit messages hidden in a
// structure) and for set-system rows in the VC-dimension machinery.
#ifndef QPWM_UTIL_BITVEC_H_
#define QPWM_UTIL_BITVEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qpwm/util/check.h"

namespace qpwm {

/// Fixed-length sequence of bits with value semantics.
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(size_t n_bits, bool value = false)
      : n_bits_(n_bits), words_((n_bits + 63) / 64, value ? ~uint64_t{0} : 0) {
    TrimLastWord();
  }

  /// Builds an n-bit vector from the low bits of `value` (bit 0 first).
  static BitVec FromUint64(uint64_t value, size_t n_bits);

  /// Parses a string of '0'/'1' characters (index 0 = first character).
  static BitVec FromString(const std::string& bits);

  size_t size() const { return n_bits_; }
  bool empty() const { return n_bits_ == 0; }

  bool Get(size_t i) const {
    QPWM_CHECK(i < n_bits_);
    return (words_[i / 64] >> (i % 64)) & 1;
  }

  void Set(size_t i, bool v) {
    QPWM_CHECK(i < n_bits_);
    uint64_t mask = uint64_t{1} << (i % 64);
    if (v) {
      words_[i / 64] |= mask;
    } else {
      words_[i / 64] &= ~mask;
    }
  }

  void Flip(size_t i) { Set(i, !Get(i)); }

  /// Number of set bits.
  size_t Count() const;

  /// Bits as a '0'/'1' string.
  std::string ToString() const;

  /// Low-order reconstruction of FromUint64; requires size() <= 64.
  uint64_t ToUint64() const;

  /// Hamming distance to another vector of equal length.
  size_t HammingDistance(const BitVec& other) const;

  bool operator==(const BitVec& other) const {
    return n_bits_ == other.n_bits_ && words_ == other.words_;
  }
  bool operator!=(const BitVec& other) const { return !(*this == other); }

 private:
  void TrimLastWord() {
    if (n_bits_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << (n_bits_ % 64)) - 1;
    }
  }

  size_t n_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace qpwm

#endif  // QPWM_UTIL_BITVEC_H_
