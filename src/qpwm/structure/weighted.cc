#include "qpwm/structure/weighted.h"

#include <cstdlib>

namespace qpwm {

WeightMap::WeightMap(uint32_t s, size_t universe_size) : s_(s) {
  QPWM_CHECK_GE(s, 1u);
  if (s_ == 1) dense_.assign(universe_size, 0);
}

Weight WeightMap::Get(const Tuple& t) const {
  QPWM_CHECK_EQ(t.size(), s_);
  if (s_ == 1) return dense_[t[0]];
  auto it = sparse_.find(t);
  return it == sparse_.end() ? 0 : it->second;
}

void WeightMap::Set(const Tuple& t, Weight w) {
  QPWM_CHECK_EQ(t.size(), s_);
  if (s_ == 1) {
    dense_[t[0]] = w;
  } else {
    sparse_[t] = w;
  }
}

void WeightMap::Add(const Tuple& t, Weight delta) {
  QPWM_CHECK_EQ(t.size(), s_);
  if (s_ == 1) {
    dense_[t[0]] += delta;
  } else {
    sparse_[t] += delta;
  }
}

Weight WeightMap::LocalDistortion(const WeightMap& other) const {
  QPWM_CHECK_EQ(s_, other.s_);
  Weight worst = 0;
  auto update = [&](Weight a, Weight b) {
    Weight d = a > b ? a - b : b - a;
    if (d > worst) worst = d;
  };
  if (s_ == 1) {
    QPWM_CHECK_EQ(dense_.size(), other.dense_.size());
    for (size_t i = 0; i < dense_.size(); ++i) update(dense_[i], other.dense_[i]);
    return worst;
  }
  // qpwm-lint: allow(unordered-iter) -- max reduction, order-independent
  for (const auto& [t, w] : sparse_) update(w, other.Get(t));
  // qpwm-lint: allow(unordered-iter) -- max reduction, order-independent
  for (const auto& [t, w] : other.sparse_) update(w, Get(t));
  return worst;
}

bool WeightMap::SameDomain(const WeightMap& other) const {
  if (s_ != other.s_) return false;
  if (s_ == 1) return dense_.size() == other.dense_.size();
  if (sparse_.size() != other.sparse_.size()) return false;
  // qpwm-lint: allow(unordered-iter) -- membership test, order-independent
  for (const auto& [t, w] : sparse_) {
    (void)w;
    if (other.sparse_.find(t) == other.sparse_.end()) return false;
  }
  return true;
}

bool WeightMap::operator==(const WeightMap& other) const {
  return LocalDistortion(other) == 0;
}

}  // namespace qpwm
