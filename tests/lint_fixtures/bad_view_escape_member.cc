// Fixture: view-escape (a) — a stored view member with no QPWM_VIEW_OF
// annotation naming what it points into. Never compiled, only linted.
#include <string_view>

namespace fx {

class Config {
 public:
  explicit Config(std::string_view text) : text_(text) {}

 private:
  std::string_view text_;
};

}  // namespace fx
