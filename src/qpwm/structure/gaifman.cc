#include "qpwm/structure/gaifman.h"

#include <algorithm>
#include <cstdint>
#include <deque>

namespace qpwm {

GaifmanGraph::GaifmanGraph(const Structure& s) : adj_(s.universe_size()) {
  for (size_t r = 0; r < s.num_relations(); ++r) {
    for (const Tuple& t : s.relation(r).tuples()) {
      for (size_t i = 0; i < t.size(); ++i) {
        for (size_t j = i + 1; j < t.size(); ++j) {
          if (t[i] == t[j]) continue;
          adj_[t[i]].push_back(t[j]);
          adj_[t[j]].push_back(t[i]);
        }
      }
    }
  }
  for (auto& nbrs : adj_) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
}

size_t GaifmanGraph::MaxDegree() const {
  size_t k = 0;
  for (const auto& nbrs : adj_) k = std::max(k, nbrs.size());
  return k;
}

std::vector<ElemId> GaifmanGraph::Sphere(ElemId a, uint32_t rho) const {
  return Sphere(Tuple{a}, rho);
}

std::vector<ElemId> GaifmanGraph::Sphere(const Tuple& c, uint32_t rho) const {
  // Multi-source BFS with depth cutoff.
  std::vector<ElemId> out;
  std::vector<uint8_t> seen(adj_.size(), 0);
  std::deque<std::pair<ElemId, uint32_t>> queue;
  for (ElemId a : c) {
    if (!seen[a]) {
      seen[a] = 1;
      out.push_back(a);
      queue.emplace_back(a, 0);
    }
  }
  while (!queue.empty()) {
    auto [e, d] = queue.front();
    queue.pop_front();
    if (d == rho) continue;
    for (ElemId nb : adj_[e]) {
      if (!seen[nb]) {
        seen[nb] = 1;
        out.push_back(nb);
        queue.emplace_back(nb, d + 1);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint32_t GaifmanGraph::Distance(ElemId a, ElemId b) const {
  if (a == b) return 0;
  std::vector<uint32_t> dist(adj_.size(), UINT32_MAX);
  std::deque<ElemId> queue{a};
  dist[a] = 0;
  while (!queue.empty()) {
    ElemId e = queue.front();
    queue.pop_front();
    for (ElemId nb : adj_[e]) {
      if (dist[nb] == UINT32_MAX) {
        dist[nb] = dist[e] + 1;
        if (nb == b) return dist[nb];
        queue.push_back(nb);
      }
    }
  }
  return UINT32_MAX;
}

}  // namespace qpwm
