// Incremental watermarking (Section 5).
//
// Theorem 7 (weights-only updates): when the owner updates weights but not
// the structure, re-applying the recorded per-tuple mark deltas to the new
// weights preserves both the global distortion and detectability — the
// detector only ever looks at differences against the owner's originals.
//
// Theorem 8 (type-preserving structural updates): if an update to the
// structure creates or removes no neighborhood isomorphism type, the
// existing pair marking remains valid as a (|W|, eta, 0, 0) procedure; we
// also re-verify the realized cost bound on the updated instance, which is
// cheap and strictly stronger.
#ifndef QPWM_CORE_INCREMENTAL_H_
#define QPWM_CORE_INCREMENTAL_H_

#include <cstdint>
#include <vector>

#include "qpwm/core/local_scheme.h"
#include "qpwm/structure/weighted.h"
#include "qpwm/util/status.h"

namespace qpwm {

/// Theorem 7: propagates the mark from (old_original -> old_marked) onto
/// new_original. Every tuple keeps its distortion M = old_marked - old_original.
WeightMap PropagateWeightsOnlyUpdate(const WeightMap& old_original,
                                     const WeightMap& old_marked,
                                     const WeightMap& new_original);

/// Outcome of a type-preservation check after a structural update.
struct UpdateCheck {
  bool type_preserving = false;  // same set of neighborhood types?
  size_t old_types = 0;
  size_t new_types = 0;
  /// Pairs of the existing marking whose both elements are still active on
  /// the updated instance (detectable bits kept).
  size_t surviving_pairs = 0;
  /// Realized max cost of the surviving pairs on the updated instance.
  uint32_t new_cost_bound = 0;
};

/// Theorem 8: checks whether `updated_index` (same query, updated structure
/// or domain) preserves all neighborhood types of the planning radius and
/// whether the scheme's pairs survive. Does not modify the scheme.
UpdateCheck CheckTypePreservingUpdate(const LocalScheme& scheme,
                                      const QueryIndex& updated_index);

/// One structural edit against a live structure: insert or delete a single
/// tuple of one relation. The stream layer batches these per epoch and
/// admits a batch only when the result passes the Theorem 8 type check.
struct StructuralUpdate {
  enum class Kind { kInsertTuple, kDeleteTuple };
  Kind kind = Kind::kInsertTuple;
  size_t relation = 0;
  Tuple tuple;
};

/// Shape validation against the structure's signature and universe, before
/// any semantic check: unknown relation index / wrong arity yield
/// kInvalidArgument, an element outside the universe yields kOutOfRange
/// (the SPSW-style fake-tuple signature — referencing rows that do not
/// exist).
[[nodiscard]] Status CheckUpdateWellFormed(const Structure& g,
                                           const StructuralUpdate& u);

/// Applies `updates` in order to a copy of `base` and seals the result.
/// Every update must be well-formed; inserting a tuple already present or
/// deleting one that is absent yields kFailedPrecondition (the batch is
/// rejected wholesale — callers quarantine and retry per-update if they
/// want partial application).
[[nodiscard]] Result<Structure> ApplyStructuralUpdates(
    const Structure& base, const std::vector<StructuralUpdate>& updates);

/// Status-typed wrapper over CheckTypePreservingUpdate: OK iff the update
/// preserves all neighborhood types (Theorem 8's hypothesis), else
/// kFailedPrecondition naming the old/new type counts. Pairs lost to an
/// admitted update surface as erasures at detection time — the coded
/// channel absorbs those — so pair survival is not part of the gate. This
/// is the admission check the stream layer applies before committing a
/// structural epoch.
[[nodiscard]] Status ValidateTypePreserving(const LocalScheme& scheme,
                                            const QueryIndex& updated_index);

}  // namespace qpwm

#endif  // QPWM_CORE_INCREMENTAL_H_
