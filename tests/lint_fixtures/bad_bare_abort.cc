// Fixture: bare-abort — process-terminating call outside util/check.h.
// Never compiled, only linted.
void Fail() {
  abort();
}
