// A downstream-user workflow on CSV data: load a sales ledger from CSV,
// watermark it while preserving the per-region revenue query a BI dashboard
// runs, export the marked CSV, and later identify which partner leaked it —
// comparing against the Agrawal-Kiernan baseline on the same data.
//
//   $ ./csv_sales
#include <iostream>

#include "qpwm/baseline/agrawal_kiernan.h"
#include "qpwm/core/distortion.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/conjunctive.h"
#include "qpwm/relational/csv.h"
#include "qpwm/relational/table.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"

using namespace qpwm;

namespace {

// Synthesizes the CSV a customer would hand us: orders with a region key and
// a revenue weight.
std::string MakeSalesCsv(size_t rows, Rng& rng) {
  static const char* kRegions[] = {"EMEA", "APAC", "AMER", "LATAM"};
  std::string csv = "order,region,revenue\n";
  for (size_t i = 0; i < rows; ++i) {
    csv += StrCat("o", i, ",", kRegions[rng.Below(4)], ",",
                  rng.Uniform(100, 9999), "\n");
  }
  return csv;
}

}  // namespace

int main() {
  Rng rng(20260706);

  // 1. Ingest the customer CSV.
  std::string csv = MakeSalesCsv(600, rng);
  Table sales = TableFromCsv("Sales",
                             {{"order", ColumnRole::kKey, ""},
                              {"region", ColumnRole::kKey, ""},
                              {"revenue", ColumnRole::kWeight, "order"}},
                             csv)
                    .ValueOrDie();
  Database db;
  db.AddTable(sales);
  RelationalInstance instance = ToWeightedStructure(db).ValueOrDie();
  std::cout << "loaded " << sales.num_rows() << " orders, universe "
            << instance.structure.universe_size() << " elements\n";

  // 2. The dashboard's registered query: orders of region u (their revenues
  //    feed a per-region total).
  auto query = ConjunctiveQuery::Parse("Sales(v1, u1)").ValueOrDie();
  // Parameters range over regions only.
  std::vector<Tuple> domain;
  for (const char* region : {"EMEA", "APAC", "AMER", "LATAM"}) {
    auto e = instance.structure.FindElement(region);
    if (e.ok()) domain.push_back(Tuple{e.value()});
  }
  QueryIndex index(instance.structure, query, domain);
  std::cout << "|W| = " << index.num_active() << " revenue-bearing orders, "
            << index.num_params() << " registered parameters\n";

  // 3. Plan, embed a partner id, export marked CSV.
  LocalSchemeOptions opts;
  opts.key = {0x5A1E5, 0xC5F};
  opts.epsilon = 0.1;  // total per-region revenue drifts by <= 10
  LocalScheme scheme = LocalScheme::Plan(index, opts).ValueOrDie();
  std::cout << "capacity " << scheme.CapacityBits() << " bits, certified drift <= "
            << scheme.Budget() << " per region total\n";

  // Partner id in the low bits; remaining capacity stays zero (or could
  // carry redundancy via the adversarial wrapper).
  const uint64_t partner = 183;
  BitVec mark(scheme.CapacityBits());
  for (size_t i = 0; i < std::min<size_t>(scheme.CapacityBits(), 16); ++i) {
    mark.Set(i, (partner >> i) & 1);
  }
  WeightMap marked = scheme.Embed(instance.weights, mark);
  Database marked_db = ApplyWeightsToDatabase(db, instance, marked).ValueOrDie();
  std::string marked_csv = TableToCsv(*marked_db.Find("Sales").ValueOrDie());
  std::cout << "exported marked CSV (" << marked_csv.size() << " bytes); "
            << "region totals drift:\n";

  TextTable totals("Per-region revenue totals");
  totals.SetHeader({"region", "original", "marked", "|drift|"});
  for (size_t p = 0; p < index.num_params(); ++p) {
    Weight f0 = index.SumWeights(p, instance.weights);
    Weight f1 = index.SumWeights(p, marked);
    totals.AddRow({instance.structure.ElementName(index.param(p)[0]), StrCat(f0),
                   StrCat(f1), StrCat(std::abs(f1 - f0))});
  }
  totals.Print(std::cout);

  // 4. A leak shows up: detect through dashboard answers.
  HonestServer suspect(index, marked);
  BitVec detected = scheme.Detect(instance.weights, suspect).ValueOrDie();
  uint64_t traced = 0;
  for (size_t i = 0; i < std::min<size_t>(detected.size(), 16); ++i) {
    traced |= static_cast<uint64_t>(detected.Get(i)) << i;
  }
  std::cout << "leak traced to partner #" << traced
            << (detected == mark ? " (correct)" : " (MISMATCH)") << "\n";

  // 5. Baseline comparison on the same table.
  AkOptions ak;
  ak.key = {7, 8};
  Table ak_marked = AkEmbed(sales, ak, nullptr).ValueOrDie();
  Database ak_db;
  ak_db.AddTable(ak_marked);
  auto ak_instance = ToWeightedStructure(ak_db).ValueOrDie();
  Weight ak_worst = 0;
  for (size_t p = 0; p < index.num_params(); ++p) {
    // Rebuild the f totals under AK weights (same universe interning order).
    Weight f0 = index.SumWeights(p, instance.weights);
    Weight f1 = index.SumWeights(p, ak_instance.weights);
    ak_worst = std::max(ak_worst, std::abs(f1 - f0));
  }
  std::cout << "Agrawal-Kiernan on the same data: worst region-total drift "
            << ak_worst << " (no a priori bound) vs our certified <= "
            << scheme.Budget() << "\n";
  return detected == mark ? 0 : 1;
}
