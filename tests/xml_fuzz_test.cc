// Robustness tests: the XML parser and XPath parser must never crash or
// hang on malformed input — every outcome is either a parsed document or a
// clean ParseError. Inputs are random mutations of valid documents plus
// random byte soup (deterministic seeds).
#include <gtest/gtest.h>

#include <string>

#include "qpwm/util/random.h"
#include "qpwm/xml/parser.h"
#include "qpwm/xml/xpath.h"

namespace qpwm {
namespace {

const char* kSeedDocs[] = {
    "<a><b>text</b><c x=\"1\"/></a>",
    "<school><student><firstname>John</firstname><exam>11</exam></student></school>",
    "<r>&lt;&amp;&gt;<n>42</n><!-- c --></r>",
};

std::string Mutate(const std::string& base, Rng& rng) {
  std::string out = base;
  size_t edits = 1 + rng.Below(4);
  for (size_t i = 0; i < edits && !out.empty(); ++i) {
    size_t pos = rng.Below(out.size());
    switch (rng.Below(3)) {
      case 0:  // flip a byte
        out[pos] = static_cast<char>(32 + rng.Below(95));
        break;
      case 1:  // delete a byte
        out.erase(pos, 1);
        break;
      case 2:  // duplicate a span
        out.insert(pos, out.substr(pos, 1 + rng.Below(5)));
        break;
    }
  }
  return out;
}

TEST(XmlFuzzTest, MutatedDocumentsNeverCrash) {
  Rng rng(2718);
  int parsed = 0, rejected = 0;
  for (const char* seed : kSeedDocs) {
    for (int trial = 0; trial < 400; ++trial) {
      std::string doc = Mutate(seed, rng);
      auto result = ParseXml(doc);
      if (result.ok()) {
        ++parsed;
        // Whatever parsed must serialize and re-parse.
        std::string serialized = SerializeXml(result.value());
        EXPECT_TRUE(ParseXml(serialized).ok()) << doc;
      } else {
        ++rejected;
        EXPECT_FALSE(result.status().message().empty());
      }
    }
  }
  // Both outcomes must occur — otherwise the harness tests nothing.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(XmlFuzzTest, RandomByteSoupNeverCrashes) {
  Rng rng(314159);
  for (int trial = 0; trial < 500; ++trial) {
    std::string soup;
    size_t len = rng.Below(60);
    for (size_t i = 0; i < len; ++i) {
      soup += static_cast<char>(rng.Below(256));
    }
    (void)ParseXml(soup);  // must return, never crash
  }
}

TEST(XmlFuzzTest, DeeplyNestedDocumentParses) {
  std::string open, close;
  for (int i = 0; i < 2000; ++i) {
    open += "<a>";
    close += "</a>";
  }
  auto result = ParseXml(open + "x" + close);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().size(), 2001u);
}

TEST(XPathFuzzTest, MutatedQueriesNeverCrash) {
  Rng rng(1618);
  const std::string seed = "school/student[firstname=$1]/exam";
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 600; ++trial) {
    std::string text = Mutate(seed, rng);
    auto result = XPathQuery::Parse(text);
    (result.ok() ? parsed : rejected) += 1;
  }
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(XmlFuzzTest, EncodeRejectsGracefully) {
  // Structured-but-wrong weight content must come back as Status, not abort.
  Rng rng(999);
  for (int trial = 0; trial < 200; ++trial) {
    std::string doc = Mutate(kSeedDocs[1], rng);
    auto parsed = ParseXml(doc);
    if (!parsed.ok()) continue;
    (void)EncodeXml(parsed.value(), {"exam"});  // ok() or clean error
  }
}

}  // namespace
}  // namespace qpwm
