// rho-neighborhoods N_rho(c): the substructure induced by the rho-sphere
// around a tuple, with the tuple's elements distinguished (as constants).
// Two tuples are rho-equivalent (a ~rho b) iff their neighborhoods are
// isomorphic as distinguished structures.
#ifndef QPWM_STRUCTURE_NEIGHBORHOOD_H_
#define QPWM_STRUCTURE_NEIGHBORHOOD_H_

#include <cstdint>
#include <vector>

#include "qpwm/structure/gaifman.h"
#include "qpwm/structure/structure.h"

namespace qpwm {

/// An extracted neighborhood: a small local structure plus the positions of
/// the distinguished tuple and the local->global element mapping.
struct Neighborhood {
  Structure local;
  Tuple distinguished;              // local ids of c, in order
  std::vector<ElemId> global_ids;   // local id -> global id (ascending)
};

/// Extracts N_rho(c) from `g`. `gg` and `idx` must be built over `g`.
Neighborhood ExtractNeighborhood(const Structure& g, const GaifmanGraph& gg,
                                 const IncidenceIndex& idx, const Tuple& c,
                                 uint32_t rho);

}  // namespace qpwm

#endif  // QPWM_STRUCTURE_NEIGHBORHOOD_H_
