#include "qpwm/util/table.h"

#include <algorithm>
#include <cstdio>

#include "qpwm/util/check.h"

namespace qpwm {

void TextTable::AddRow(std::vector<std::string> row) {
  QPWM_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> width(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
      os << " |";
    }
    os << '\n';
  };

  auto print_rule = [&] {
    os << "+";
    for (size_t c = 0; c < width.size(); ++c) {
      for (size_t i = 0; i < width[c] + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };

  os << "\n== " << title_ << " ==\n";
  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

std::string FmtDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace qpwm
