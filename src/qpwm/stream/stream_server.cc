#include "qpwm/stream/stream_server.h"

#include <string>
#include <utility>

#include "qpwm/util/check.h"

namespace qpwm {

StreamServer::StreamServer(const LocalScheme& scheme, WeightMap original,
                           WeightMap marked)
    : scheme_(&scheme),
      domain_(scheme.index().domain()),
      original_(std::move(original)) {
  // Own a copy of the deployment structure and rebuild the index against it,
  // so structural epochs can swap both without touching the scheme's
  // planning-time instance.
  structure_ = std::make_shared<const Structure>(scheme.index().structure());
  index_ = BuildIndex(structure_);
  live_ = std::make_unique<HonestServer>(*index_, std::move(marked));
  Publish();  // epoch 0
}

std::shared_ptr<const QueryIndex> StreamServer::BuildIndex(
    const std::shared_ptr<const Structure>& g) const {
  return std::make_shared<const QueryIndex>(*g, scheme_->index().query(),
                                            domain_);
}

Status StreamServer::Submit(const Update& u) {
  ++counters_.submitted;
  ++counters_.submitted_by_kind[static_cast<size_t>(u.kind)];
  Status status = SubmitImpl(u);
  if (!status.ok()) Reject(u, status);
  return status;
}

Status StreamServer::SubmitImpl(const Update& u) {
  if (frozen_) return Status::FailedPrecondition("stream is frozen");
  switch (u.kind) {
    case UpdateKind::kWeightRefresh:
    case UpdateKind::kWeightWrite: {
      if (u.elem >= structure_->universe_size()) {
        return Status::OutOfRange("weight update targets element " +
                                  std::to_string(u.elem) +
                                  " outside universe of size " +
                                  std::to_string(structure_->universe_size()));
      }
      if (u.kind == UpdateKind::kWeightRefresh) {
        // Theorem 7: the owner's refresh moves original and marked copies by
        // the same delta, so every pair keeps its mark distortion.
        original_.AddElem(u.elem, u.delta);
      }
      live_->mutable_weights().AddElem(u.elem, u.delta);
      Apply(u);
      return Status::OK();
    }
    default: {
      if (u.edits.empty()) {
        return Status::InvalidArgument("structural update carries no edits");
      }
      // Shape gate now; the semantic (Theorem 8) gate runs at epoch seal.
      for (const StructuralUpdate& edit : u.edits) {
        QPWM_RETURN_NOT_OK(CheckUpdateWellFormed(*structure_, edit));
      }
      pending_.push_back(u);
      return Status::OK();
    }
  }
}

void StreamServer::Reject(const Update& u, const Status& status) {
  QPWM_CHECK(!status.ok());
  ++counters_.rejected;
  ++counters_.rejected_by_code[static_cast<size_t>(status.code())];
  ++counters_.rejected_by_kind[static_cast<size_t>(u.kind)];
}

void StreamServer::Apply(const Update& u) {
  ++counters_.applied;
  ++counters_.applied_by_kind[static_cast<size_t>(u.kind)];
}

std::shared_ptr<const StreamSnapshot> StreamServer::SealEpoch() {
  std::vector<Update> batch = std::move(pending_);
  pending_.clear();

  if (!batch.empty()) {
    // Fast path: admit the whole staged batch at once if its combined result
    // passes the type gate.
    std::vector<StructuralUpdate> all_edits;
    for (const Update& u : batch) {
      all_edits.insert(all_edits.end(), u.edits.begin(), u.edits.end());
    }
    bool committed = false;
    Result<Structure> combined = ApplyStructuralUpdates(*structure_, all_edits);
    if (combined.ok()) {
      auto cand_structure =
          std::make_shared<const Structure>(std::move(combined).value());
      auto cand_index = BuildIndex(cand_structure);
      const Status gate = ValidateTypePreserving(*scheme_, *cand_index);
      if (gate.ok()) {
        structure_ = std::move(cand_structure);
        index_ = std::move(cand_index);
        for (const Update& u : batch) Apply(u);
        committed = true;
      }
    }
    if (!committed) {
      // Deterministic per-update fallback: re-admit in submission order so a
      // single hostile update cannot veto the epoch's honest churn. Each
      // admitted update commits before the next is judged.
      ++counters_.fallback_epochs;
      for (const Update& u : batch) {
        Result<Structure> one = ApplyStructuralUpdates(*structure_, u.edits);
        if (!one.ok()) {
          Reject(u, one.status());
          continue;
        }
        auto cand_structure =
            std::make_shared<const Structure>(std::move(one).value());
        auto cand_index = BuildIndex(cand_structure);
        const Status gate = ValidateTypePreserving(*scheme_, *cand_index);
        if (!gate.ok()) {
          Reject(u, gate);
          continue;
        }
        structure_ = std::move(cand_structure);
        index_ = std::move(cand_index);
        Apply(u);
      }
    }
    // The live server's index pointer must track the committed structure.
    live_ = std::make_unique<HonestServer>(*index_, live_->weights());
  } else if (!live_->has_dense_view()) {
    // Weight-only epoch: restore the dense fast path after mutations.
    live_->RefreshView();
  }

  ++epoch_;
  ++counters_.epochs_sealed;
  Publish();
  return published_;
}

void StreamServer::Publish() {
  auto serving = std::make_shared<const ServingSnapshot>(
      *index_, live_->weights(), epoch_);
  auto snap = std::make_shared<const StreamSnapshot>(
      epoch_, structure_, index_, original_, std::move(serving));
  if (published_) published_->Retire();
  published_ = std::move(snap);
}

}  // namespace qpwm
