// CSV import/export for tables: a practical ingestion path for the
// relational engine. Dialect: comma separator, double-quote quoting with
// doubled-quote escapes, first line = header. Column roles come from the
// caller (CSV has no types); weight columns must parse as integers.
#ifndef QPWM_RELATIONAL_CSV_H_
#define QPWM_RELATIONAL_CSV_H_

#include <string>
#include <string_view>

#include "qpwm/relational/table.h"
#include "qpwm/util/status.h"

namespace qpwm {

/// Parses CSV text into a table named `name`. `columns` must match the
/// header names in order (roles attached by the caller).
[[nodiscard]] Result<Table> TableFromCsv(std::string name, std::vector<ColumnSpec> columns,
                           std::string_view csv);

/// Renders a table as CSV (header + rows).
std::string TableToCsv(const Table& table);

}  // namespace qpwm

#endif  // QPWM_RELATIONAL_CSV_H_
