// E5 — Theorem 3 / Proposition 2: the local-query scheme on bounded-degree
// structures. For each (degree bound k, |universe|, epsilon) cell we report
// ntp, candidate pairs, selected bits l, the verified distortion bound
// against the budget ceil(1/eps), marker success statistics (Prop 2's 3/4),
// and detector recovery over random marks. Ablations: class pairing on/off,
// paper-random vs greedy selection.
#include <iostream>
#include <optional>
#include <string>

#include "bench_json.h"
#include "qpwm/core/distortion.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"

using namespace qpwm;

namespace {

struct CellResult {
  size_t ntp = 0;
  size_t candidates = 0;
  size_t bits = 0;
  uint32_t bound = 0;
  uint32_t budget = 0;
  int tries = 0;
  bool detected = true;
};

CellResult RunCell(size_t n, size_t k, double epsilon, LocalSchemeOptions base,
                   uint64_t seed) {
  Rng rng(seed);
  Structure g = RandomBoundedDegreeGraph(n, k, 3 * n, false, rng);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));
  WeightMap w = RandomWeights(g, 100, 999, rng);

  base.epsilon = epsilon;
  base.key = {seed, seed ^ 0x1234};
  auto scheme = LocalScheme::Plan(index, base).ValueOrDie();

  CellResult out;
  out.ntp = scheme.NumTypes();
  out.candidates = scheme.CandidatePairs();
  out.bits = scheme.CapacityBits();
  out.bound = scheme.DistortionBound();
  out.budget = scheme.Budget();
  out.tries = scheme.TriesUsed();
  if (out.bits > 0) {
    BitVec mark(out.bits);
    for (size_t i = 0; i < out.bits; ++i) mark.Set(i, rng.Coin());
    WeightMap marked = scheme.Embed(w, mark);
    HonestServer server(index, marked);
    auto detected = scheme.Detect(w, server);
    out.detected = detected.ok() && detected.value() == mark;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<std::string> json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json_path = "BENCH_plan.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::cerr << "usage: bench_local_scheme [--json[=PATH]]\n";
      return 2;
    }
  }

  std::cout << "=== bench_local_scheme: Theorem 3 on STRUCT_k ===\n";

  JsonWriter json;
  json.BeginObject();
  json.Key("sweep").BeginArray();
  TextTable sweep("Capacity and distortion vs |U|, k, epsilon (query E(u,v))");
  sweep.SetHeader({"|U|", "k", "1/eps", "ntp", "pairs", "bits l", "bound", "budget",
                   "tries", "detect"});
  for (size_t k : {2, 3, 4}) {
    for (size_t n : {200, 1000, 4000}) {
      for (double inv_eps : {1.0, 2.0, 4.0}) {
        CellResult r = RunCell(n, k, 1.0 / inv_eps, {}, n * 31 + k);
        sweep.AddRow({StrCat(n), StrCat(k), StrCat(inv_eps), StrCat(r.ntp),
                      StrCat(r.candidates), StrCat(r.bits), StrCat(r.bound),
                      StrCat(r.budget), StrCat(r.tries),
                      r.detected ? "OK" : "FAIL"});
        json.BeginObject();
        json.Key("n").UInt(n);
        json.Key("k").UInt(k);
        json.Key("inv_eps").Double(inv_eps);
        json.Key("ntp").UInt(r.ntp);
        json.Key("candidate_pairs").UInt(r.candidates);
        json.Key("bits").UInt(r.bits);
        json.Key("distortion_bound").UInt(r.bound);
        json.Key("budget").UInt(r.budget);
        json.Key("tries").Int(r.tries);
        json.Key("detected").Bool(r.detected);
        json.EndObject();
      }
    }
  }
  json.EndArray();
  json.EndObject();
  sweep.Print(std::cout);
  std::cout << "shape check: bits grow with |U| at fixed (k, eps); the verified "
               "bound never exceeds the budget; detection is exact.\n";

  // Marker success probability (Proposition 2's >= 3/4): count first-try
  // epsilon-good subsets over independent keys.
  {
    TextTable success("Marker success statistics over 40 keys (n=1000, k=3)");
    success.SetHeader({"1/eps", "first-try ok", "mean tries"});
    for (double inv_eps : {1.0, 2.0, 4.0}) {
      int first_try = 0;
      int total_tries = 0;
      for (uint64_t key = 0; key < 40; ++key) {
        Rng rng(9000 + key);
        Structure g = RandomBoundedDegreeGraph(1000, 3, 3000, false, rng);
        auto query = AtomQuery::Adjacency("E");
        QueryIndex index(g, *query, AllParams(g, 1));
        LocalSchemeOptions opts;
        opts.epsilon = 1.0 / inv_eps;
        opts.key = {key, key + 99};
        auto scheme = LocalScheme::Plan(index, opts).ValueOrDie();
        first_try += scheme.TriesUsed() <= 1;
        total_tries += scheme.TriesUsed();
      }
      success.AddRow({StrCat(inv_eps), StrCat(first_try, "/40"),
                      FmtDouble(total_tries / 40.0, 2)});
    }
    success.Print(std::cout);
    std::cout << "Prop 2 claims success probability >= 3/4 per try.\n";
  }

  // Ablations.
  {
    TextTable ablation("Ablation (n=2000, k=3, 1/eps=2): pairing and selection");
    ablation.SetHeader({"variant", "bits l", "bound", "tries"});
    struct Variant {
      const char* name;
      LocalSchemeOptions opts;
    };
    std::vector<Variant> variants;
    variants.push_back({"class pairing + random (paper)", {}});
    {
      LocalSchemeOptions o;
      o.class_pairing = false;
      variants.push_back({"arbitrary pairing + random", o});
    }
    {
      LocalSchemeOptions o;
      o.selection = PairSelection::kGreedy;
      variants.push_back({"class pairing + greedy", o});
    }
    for (auto& variant : variants) {
      CellResult r = RunCell(2000, 3, 0.5, variant.opts, 777);
      ablation.AddRow({variant.name, StrCat(r.bits), StrCat(r.bound),
                       StrCat(r.tries)});
    }
    ablation.Print(std::cout);
  }

  if (json_path) {
    if (!UpdateBenchJsonSection(*json_path, "local_scheme", json.str())) {
      std::cerr << "FAIL: cannot write " << *json_path << "\n";
      return 1;
    }
    std::cout << "wrote section \"local_scheme\" to " << *json_path << "\n";
  }
  return 0;
}
