#include "qpwm/structure/neighborhood.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace qpwm {

Neighborhood ExtractNeighborhood(const Structure& g, const GaifmanGraph& gg,
                                 const IncidenceIndex& idx, const Tuple& c,
                                 uint32_t rho) {
  std::vector<ElemId> sphere = gg.Sphere(c, rho);

  std::unordered_map<ElemId, ElemId> to_local;
  to_local.reserve(sphere.size());
  for (size_t i = 0; i < sphere.size(); ++i) {
    to_local[sphere[i]] = static_cast<ElemId>(i);
  }

  Neighborhood out{Structure(g.signature(), sphere.size()), {}, sphere};

  // Collect tuples fully inside the sphere via the incidence lists of sphere
  // members; dedupe by (relation, tuple index).
  std::unordered_set<uint64_t> seen;
  for (ElemId e : sphere) {
    for (const auto& entry : idx.Incident(e)) {
      uint64_t key = (static_cast<uint64_t>(entry.relation) << 32) | entry.tuple_index;
      if (!seen.insert(key).second) continue;
      const Tuple& t = g.relation(entry.relation).tuples()[entry.tuple_index];
      Tuple local_t;
      local_t.reserve(t.size());
      bool inside = true;
      for (ElemId x : t) {
        auto it = to_local.find(x);
        if (it == to_local.end()) {
          inside = false;
          break;
        }
        local_t.push_back(it->second);
      }
      if (inside) out.local.AddTuple(entry.relation, std::move(local_t));
    }
  }
  out.local.Finalize();

  out.distinguished.reserve(c.size());
  for (ElemId x : c) out.distinguished.push_back(to_local.at(x));
  return out;
}

}  // namespace qpwm
