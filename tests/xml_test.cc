#include <gtest/gtest.h>

#include "qpwm/util/random.h"
#include "qpwm/xml/encode.h"
#include "qpwm/xml/parser.h"

namespace qpwm {
namespace {

// --- Parser ----------------------------------------------------------------

TEST(XmlParserTest, SimpleElement) {
  XmlDocument doc = MustParseXml("<a><b>text</b></a>");
  const XmlNode& root = doc.node(doc.root());
  EXPECT_EQ(root.tag, "a");
  ASSERT_EQ(root.children.size(), 1u);
  const XmlNode& b = doc.node(root.children[0]);
  EXPECT_EQ(b.tag, "b");
  EXPECT_EQ(doc.TextContent(root.children[0]), "text");
}

TEST(XmlParserTest, SelfClosingAndAttributes) {
  XmlDocument doc = MustParseXml(R"(<a x="1" y="two"><b/></a>)");
  const XmlNode& root = doc.node(doc.root());
  ASSERT_EQ(root.attrs.size(), 2u);
  EXPECT_EQ(root.attrs[0].name, "x");
  EXPECT_EQ(root.attrs[1].value, "two");
  EXPECT_EQ(root.children.size(), 1u);
}

TEST(XmlParserTest, EntitiesDecoded) {
  XmlDocument doc = MustParseXml("<a>&lt;x&gt; &amp; &quot;y&quot;</a>");
  EXPECT_EQ(doc.TextContent(doc.root()), "<x> & \"y\"");
}

TEST(XmlParserTest, CommentsAndPrologSkipped) {
  XmlDocument doc = MustParseXml(
      "<?xml version=\"1.0\"?><!-- hi --><a><!-- inner -->x</a><!-- bye -->");
  EXPECT_EQ(doc.TextContent(doc.root()), "x");
}

TEST(XmlParserTest, WhitespaceOnlyTextDropped) {
  XmlDocument doc = MustParseXml("<a>\n  <b>v</b>\n</a>");
  EXPECT_EQ(doc.node(doc.root()).children.size(), 1u);
}

TEST(XmlParserTest, Errors) {
  EXPECT_FALSE(ParseXml("<a><b></a>").ok());      // mismatched close
  EXPECT_FALSE(ParseXml("<a>").ok());             // unterminated
  EXPECT_FALSE(ParseXml("<a>x</a><b/>").ok());    // two roots
  EXPECT_FALSE(ParseXml("<a x=1></a>").ok());     // unquoted attribute
  EXPECT_FALSE(ParseXml("<a>&bogus;</a>").ok());  // unknown entity
  EXPECT_FALSE(ParseXml("").ok());
}

TEST(XmlParserTest, SerializeRoundTrip) {
  XmlDocument doc = MustParseXml("<a p=\"q\"><b>1 &amp; 2</b><c/></a>");
  std::string serialized = SerializeXml(doc);
  XmlDocument again = MustParseXml(serialized);
  EXPECT_EQ(SerializeXml(again), serialized);
}

TEST(XmlDomTest, ChildByTag) {
  XmlDocument doc = MustParseXml("<a><b>1</b><c>2</c></a>");
  auto c = doc.ChildByTag(doc.root(), "c");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(doc.TextContent(c.value()), "2");
  EXPECT_FALSE(doc.ChildByTag(doc.root(), "zzz").ok());
}

// --- Binary encoding --------------------------------------------------------

TEST(EncodeTest, FirstChildNextSibling) {
  XmlDocument doc = MustParseXml("<a><b/><c/><d/></a>");
  auto enc = EncodeXml(doc, {}).ValueOrDie();
  // a's left child is b; b's right sibling is c; c's right sibling is d.
  const BinaryTree& t = enc.tree;
  NodeId a = enc.xml_to_tree[doc.root()];
  NodeId b = t.left(a);
  ASSERT_NE(b, kNoNode);
  EXPECT_EQ(enc.sigma.Name(t.label(b)), "b");
  NodeId c = t.right(b);
  ASSERT_NE(c, kNoNode);
  EXPECT_EQ(enc.sigma.Name(t.label(c)), "c");
  NodeId d = t.right(c);
  ASSERT_NE(d, kNoNode);
  EXPECT_EQ(enc.sigma.Name(t.label(d)), "d");
  EXPECT_EQ(t.right(d), kNoNode);
  EXPECT_EQ(t.right(a), kNoNode);  // root has no sibling
}

TEST(EncodeTest, TextNodesBecomeLabeledLeaves) {
  XmlDocument doc = MustParseXml("<a><b>John</b></a>");
  auto enc = EncodeXml(doc, {}).ValueOrDie();
  NodeId b = enc.tree.left(enc.xml_to_tree[doc.root()]);
  NodeId text = enc.tree.left(b);
  ASSERT_NE(text, kNoNode);
  EXPECT_EQ(enc.sigma.Name(enc.tree.label(text)), "John");
}

TEST(EncodeTest, WeightTagsAbsorbNumericText) {
  XmlDocument doc = MustParseXml("<a><exam>17</exam></a>");
  auto enc = EncodeXml(doc, {"exam"}).ValueOrDie();
  NodeId exam = enc.tree.left(enc.xml_to_tree[doc.root()]);
  EXPECT_EQ(enc.sigma.Name(enc.tree.label(exam)), "exam");
  EXPECT_TRUE(enc.is_weight_node[exam]);
  EXPECT_EQ(enc.weights.GetElem(exam), 17);
  EXPECT_EQ(enc.tree.left(exam), kNoNode);  // text absorbed
}

TEST(EncodeTest, WeightTagWithNonNumericTextFails) {
  XmlDocument doc = MustParseXml("<a><exam>abc</exam></a>");
  EXPECT_FALSE(EncodeXml(doc, {"exam"}).ok());
}

TEST(EncodeTest, WeightTagWithElementChildFails) {
  XmlDocument doc = MustParseXml("<a><exam><sub/>1</exam></a>");
  EXPECT_FALSE(EncodeXml(doc, {"exam"}).ok());
}

TEST(EncodeTest, AttributesBecomeAtNodes) {
  XmlDocument doc = MustParseXml(R"(<a k="v"><b/></a>)");
  auto enc = EncodeXml(doc, {}).ValueOrDie();
  NodeId a = enc.xml_to_tree[doc.root()];
  NodeId attr = enc.tree.left(a);
  EXPECT_EQ(enc.sigma.Name(enc.tree.label(attr)), "@k");
  EXPECT_EQ(enc.sigma.Name(enc.tree.label(enc.tree.left(attr))), "v");
  // The document child b follows as the attribute node's sibling.
  EXPECT_EQ(enc.sigma.Name(enc.tree.label(enc.tree.right(attr))), "b");
}

TEST(EncodeTest, NodeCountMatches) {
  XmlDocument doc = SchoolExampleDocument();
  auto enc = EncodeXml(doc, {"exam"}).ValueOrDie();
  // 1 school + 3 students + 9 field elements + 6 text leaves (firstname /
  // lastname values; exam texts absorbed).
  EXPECT_EQ(enc.tree.size(), 1u + 3u + 9u + 6u);
}

TEST(EncodeTest, ApplyWeightsRoundTrip) {
  XmlDocument doc = SchoolExampleDocument();
  auto enc = EncodeXml(doc, {"exam"}).ValueOrDie();
  WeightMap modified = enc.weights;
  // Find some weight node and bump it.
  NodeId weight_node = kNoNode;
  for (NodeId v = 0; v < enc.tree.size(); ++v) {
    if (enc.is_weight_node[v]) {
      weight_node = v;
      break;
    }
  }
  ASSERT_NE(weight_node, kNoNode);
  modified.AddElem(weight_node, 1);
  XmlDocument out = ApplyWeights(doc, enc, modified);
  auto enc2 = EncodeXml(out, {"exam"}).ValueOrDie();
  EXPECT_EQ(enc2.weights.GetElem(weight_node), enc.weights.GetElem(weight_node) + 1);
}

TEST(EncodeTest, SchoolExampleWeights) {
  XmlDocument doc = SchoolExampleDocument();
  auto enc = EncodeXml(doc, {"exam"}).ValueOrDie();
  Weight total = 0;
  for (NodeId v = 0; v < enc.tree.size(); ++v) {
    if (enc.is_weight_node[v]) total += enc.weights.GetElem(v);
  }
  EXPECT_EQ(total, 11 + 16 + 12);
}

TEST(EncodeTest, RandomSchoolDocumentShape) {
  Rng rng(5);
  XmlDocument doc = RandomSchoolDocument(25, rng, 0, 20, 2);
  auto enc = EncodeXml(doc, {"exam"}).ValueOrDie();
  size_t weight_nodes = 0;
  for (NodeId v = 0; v < enc.tree.size(); ++v) weight_nodes += enc.is_weight_node[v];
  EXPECT_EQ(weight_nodes, 25u);
}

}  // namespace
}  // namespace qpwm
