file(REMOVE_RECURSE
  "libqpwm_logic.a"
)
