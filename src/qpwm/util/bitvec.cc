#include "qpwm/util/bitvec.h"

#include <bit>

namespace qpwm {

BitVec BitVec::FromUint64(uint64_t value, size_t n_bits) {
  QPWM_CHECK(n_bits <= 64);
  BitVec v(n_bits);
  for (size_t i = 0; i < n_bits; ++i) {
    if ((value >> i) & 1) v.Set(i, true);
  }
  return v;
}

BitVec BitVec::FromString(const std::string& bits) {
  BitVec v(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    QPWM_CHECK(bits[i] == '0' || bits[i] == '1');
    if (bits[i] == '1') v.Set(i, true);
  }
  return v;
}

size_t BitVec::Count() const {
  size_t c = 0;
  for (uint64_t w : words_) c += static_cast<size_t>(std::popcount(w));
  return c;
}

std::string BitVec::ToString() const {
  std::string s(n_bits_, '0');
  for (size_t i = 0; i < n_bits_; ++i) {
    if (Get(i)) s[i] = '1';
  }
  return s;
}

uint64_t BitVec::ToUint64() const {
  QPWM_CHECK(n_bits_ <= 64);
  return words_.empty() ? 0 : words_[0];
}

size_t BitVec::HammingDistance(const BitVec& other) const {
  QPWM_CHECK_EQ(n_bits_, other.n_bits_);
  size_t d = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    d += static_cast<size_t>(std::popcount(words_[i] ^ other.words_[i]));
  }
  return d;
}

}  // namespace qpwm
