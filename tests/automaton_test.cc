#include <gtest/gtest.h>

#include "qpwm/tree/automaton.h"
#include "qpwm/tree/bintree.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

// Automaton over {a=0, b=1} accepting trees containing at least one 'b'.
Dta HasBAutomaton() {
  Dta d(2, 2);  // state 0 = no b yet, state 1 = b seen
  for (uint32_t sym = 0; sym < 2; ++sym) {
    for (State l : {kAbsentChild, State{0}, State{1}}) {
      for (State r : {kAbsentChild, State{0}, State{1}}) {
        bool seen = sym == 1 || l == 1 || r == 1;
        d.AddTransition(l, r, sym, seen ? 1 : 0);
      }
    }
  }
  d.SetAccepting(1, true);
  return d;
}

// Automaton accepting trees whose root label is 'a'.
Dta RootIsAAutomaton() {
  Dta d(2, 2);  // state = last label (0 = a, 1 = b)
  for (uint32_t sym = 0; sym < 2; ++sym) {
    for (State l : {kAbsentChild, State{0}, State{1}}) {
      for (State r : {kAbsentChild, State{0}, State{1}}) {
        d.AddTransition(l, r, sym, sym);
      }
    }
  }
  d.SetAccepting(0, true);
  return d;
}

std::vector<uint32_t> Labels(const BinaryTree& t) { return t.labels(); }

TEST(DtaTest, RunHasB) {
  Dta d = HasBAutomaton();
  BinaryTree all_a = CompleteTree(7, 1);  // labels all 0
  EXPECT_FALSE(d.Accepts(all_a, Labels(all_a)));

  BinaryTree t = CompleteTree(7, 1);
  std::vector<uint32_t> labels = Labels(t);
  labels[5] = 1;
  EXPECT_TRUE(d.Accepts(t, labels));
}

TEST(DtaTest, MissingTransitionGoesToSink) {
  Dta d(1, 2);
  d.AddTransition(kAbsentChild, kAbsentChild, 0, 0);
  d.SetAccepting(0, true);
  BinaryTree leaf;
  leaf.AddNode(1);
  ASSERT_TRUE(leaf.Finalize().ok());
  // Label 1 has no leaf transition: run dies in the sink.
  EXPECT_FALSE(d.Accepts(leaf, Labels(leaf)));
  EXPECT_EQ(d.RunRoot(leaf, Labels(leaf)), d.sink());
}

TEST(DtaTest, ComplementFlipsAcceptance) {
  Rng rng(1);
  Dta d = HasBAutomaton();
  Dta c = d.Complement();
  for (int i = 0; i < 30; ++i) {
    BinaryTree t = RandomBinaryTree(1 + rng.Below(20), 2, rng);
    EXPECT_NE(d.Accepts(t, Labels(t)), c.Accepts(t, Labels(t)));
  }
}

TEST(DtaTest, ComplementOfSinkIsAccepting) {
  Dta d(1, 2);
  d.AddTransition(kAbsentChild, kAbsentChild, 0, 0);
  Dta c = d.Complement();
  BinaryTree leaf;
  leaf.AddNode(1);
  ASSERT_TRUE(leaf.Finalize().ok());
  EXPECT_TRUE(c.Accepts(leaf, Labels(leaf)));  // sink became accepting
}

TEST(DtaTest, ProductConjunction) {
  Rng rng(3);
  Dta a = HasBAutomaton();
  Dta b = RootIsAAutomaton();
  Dta both = Dta::Product(a, b, true);
  Dta either = Dta::Product(a, b, false);
  for (int i = 0; i < 50; ++i) {
    BinaryTree t = RandomBinaryTree(1 + rng.Below(15), 2, rng);
    bool ea = a.Accepts(t, Labels(t));
    bool eb = b.Accepts(t, Labels(t));
    EXPECT_EQ(both.Accepts(t, Labels(t)), ea && eb);
    EXPECT_EQ(either.Accepts(t, Labels(t)), ea || eb);
  }
}

TEST(DtaTest, ProductWithComplementedSink) {
  Rng rng(9);
  Dta a = HasBAutomaton().Complement();
  Dta b = RootIsAAutomaton();
  Dta both = Dta::Product(a, b, true);
  for (int i = 0; i < 50; ++i) {
    BinaryTree t = RandomBinaryTree(1 + rng.Below(15), 2, rng);
    EXPECT_EQ(both.Accepts(t, Labels(t)),
              a.Accepts(t, Labels(t)) && b.Accepts(t, Labels(t)));
  }
}

TEST(DtaTest, MinimizePreservesLanguage) {
  Rng rng(5);
  Dta big = Dta::Product(HasBAutomaton(), RootIsAAutomaton(), true);
  Dta small = big.Minimize();
  EXPECT_LE(small.num_states(), big.num_states());
  for (int i = 0; i < 80; ++i) {
    BinaryTree t = RandomBinaryTree(1 + rng.Below(18), 2, rng);
    EXPECT_EQ(big.Accepts(t, Labels(t)), small.Accepts(t, Labels(t)));
  }
}

TEST(DtaTest, MinimizeMergesEquivalentStates) {
  // Two states with identical behavior collapse.
  Dta d(2, 1);
  d.AddTransition(kAbsentChild, kAbsentChild, 0, 0);
  d.AddTransition(0, kAbsentChild, 0, 1);
  d.AddTransition(1, kAbsentChild, 0, 0);
  d.SetAccepting(0, true);
  d.SetAccepting(1, true);
  Dta m = d.Minimize();
  EXPECT_EQ(m.num_states(), 1u);
}

TEST(DtaTest, RemapSymbolsCylindrify) {
  // Double the alphabet: each old symbol s becomes {s, s + 2} (new bit free).
  Dta d = HasBAutomaton();
  std::vector<std::vector<uint32_t>> mapping{{0, 2}, {1, 3}};
  Dta wide = d.RemapSymbols(4, mapping);
  Rng rng(6);
  for (int i = 0; i < 30; ++i) {
    BinaryTree t = RandomBinaryTree(1 + rng.Below(12), 2, rng);
    std::vector<uint32_t> labels = Labels(t);
    std::vector<uint32_t> wide_labels = labels;
    for (auto& l : wide_labels) {
      if (rng.Coin()) l += 2;  // the free bit is ignored
    }
    EXPECT_EQ(d.Accepts(t, labels), wide.Accepts(t, wide_labels));
  }
}

TEST(NtaTest, DeterminizeRoundTrip) {
  Rng rng(7);
  Dta d = Dta::Product(HasBAutomaton(), RootIsAAutomaton(), false);
  Dta d2 = d.ToNta().Determinize();
  for (int i = 0; i < 60; ++i) {
    BinaryTree t = RandomBinaryTree(1 + rng.Below(15), 2, rng);
    EXPECT_EQ(d.Accepts(t, Labels(t)), d2.Accepts(t, Labels(t)));
  }
}

TEST(NtaTest, DeterminizeWithAcceptingSink) {
  Rng rng(8);
  Dta d = HasBAutomaton().Complement();  // accepting sink
  Dta d2 = d.ToNta().Determinize();
  for (int i = 0; i < 60; ++i) {
    BinaryTree t = RandomBinaryTree(1 + rng.Below(15), 2, rng);
    EXPECT_EQ(d.Accepts(t, Labels(t)), d2.Accepts(t, Labels(t)));
  }
}

TEST(NtaTest, ProjectionUnionSemantics) {
  // Alphabet {a0, b0, a1, b1} (bit = second track). Project the track from
  // the has-b automaton lifted to 2 tracks: accept iff SOME bit assignment
  // yields a 'b is present' — i.e. base has a b. (The bit is free.)
  Dta d = HasBAutomaton();
  std::vector<std::vector<uint32_t>> to_wide{{0, 2}, {1, 3}};
  Dta wide = d.RemapSymbols(4, to_wide);
  // Now project back: {0,2}->0, {1,3}->1.
  std::vector<std::vector<uint32_t>> proj{{0}, {1}, {0}, {1}};
  Dta back = wide.ToNta().RemapSymbols(2, proj).Determinize();
  Rng rng(10);
  for (int i = 0; i < 40; ++i) {
    BinaryTree t = RandomBinaryTree(1 + rng.Below(12), 2, rng);
    EXPECT_EQ(back.Accepts(t, Labels(t)), d.Accepts(t, Labels(t)));
  }
}

// Random (total-ish) deterministic automaton for property tests.
Dta RandomDta(uint32_t states, uint32_t alphabet, double keep, Rng& rng) {
  Dta d(states, alphabet);
  std::vector<State> child_domain{kAbsentChild};
  for (State q = 0; q < states; ++q) child_domain.push_back(q);
  for (State l : child_domain) {
    for (State r : child_domain) {
      for (uint32_t sym = 0; sym < alphabet; ++sym) {
        if (rng.Bernoulli(keep)) {
          d.AddTransition(l, r, sym, static_cast<State>(rng.Below(states)));
        }
      }
    }
  }
  for (State q = 0; q < states; ++q) d.SetAccepting(q, rng.Coin());
  return d;
}

class AutomatonPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AutomatonPropertyTest, DeMorganOnRandomAutomata) {
  Rng rng(GetParam());
  Dta a = RandomDta(4, 3, 0.8, rng);
  Dta b = RandomDta(3, 3, 0.8, rng);
  // !(a & b) == !a | !b
  Dta lhs = Dta::Product(a, b, true).Complement();
  Dta rhs = Dta::Product(a.Complement(), b.Complement(), false);
  EXPECT_TRUE(Dta::Equivalent(lhs, rhs));
  for (int i = 0; i < 25; ++i) {
    BinaryTree t = RandomBinaryTree(1 + rng.Below(12), 3, rng);
    EXPECT_EQ(lhs.Accepts(t, t.labels()), rhs.Accepts(t, t.labels()));
  }
}

TEST_P(AutomatonPropertyTest, MinimizeIsIdempotentAndEquivalent) {
  Rng rng(GetParam() * 31 + 7);
  Dta a = RandomDta(6, 2, 0.7, rng);
  Dta m1 = a.Minimize();
  Dta m2 = m1.Minimize();
  EXPECT_EQ(m1.num_states(), m2.num_states());
  EXPECT_TRUE(Dta::Equivalent(a, m1));
  for (int i = 0; i < 25; ++i) {
    BinaryTree t = RandomBinaryTree(1 + rng.Below(14), 2, rng);
    EXPECT_EQ(a.Accepts(t, t.labels()), m1.Accepts(t, t.labels()));
  }
}

TEST_P(AutomatonPropertyTest, DeterminizeOfToNtaIsEquivalent) {
  Rng rng(GetParam() * 97 + 3);
  Dta a = RandomDta(5, 2, 0.6, rng);
  EXPECT_TRUE(Dta::Equivalent(a, a.ToNta().Determinize()));
}

TEST_P(AutomatonPropertyTest, DoubleComplementIsIdentity) {
  Rng rng(GetParam() * 11 + 1);
  Dta a = RandomDta(5, 3, 0.75, rng);
  EXPECT_TRUE(Dta::Equivalent(a, a.Complement().Complement()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutomatonPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(DtaAnalysisTest, EmptyAndUniversal) {
  // No accepting state: empty.
  Dta never(1, 2);
  never.AddTransition(kAbsentChild, kAbsentChild, 0, 0);
  EXPECT_TRUE(never.IsEmpty());
  EXPECT_FALSE(never.IsUniversal());
  // Complement of empty over a total automaton: universal.
  Dta all(1, 2);
  for (uint32_t sym = 0; sym < 2; ++sym) {
    all.AddTransition(kAbsentChild, kAbsentChild, sym, 0);
    all.AddTransition(0, kAbsentChild, sym, 0);
    all.AddTransition(kAbsentChild, 0, sym, 0);
    all.AddTransition(0, 0, sym, 0);
  }
  all.SetAccepting(0, true);
  EXPECT_FALSE(all.IsEmpty());
  EXPECT_TRUE(all.IsUniversal());
  EXPECT_TRUE(all.Complement().IsEmpty());
}

TEST(DtaAnalysisTest, SinkAcceptingReachableViaMissingLeaf) {
  // Accepting sink + a missing leaf key: non-empty.
  Dta d(1, 2);
  d.AddTransition(kAbsentChild, kAbsentChild, 0, 0);  // symbol 1 leaf missing
  d.SetAccepting(d.sink(), true);
  EXPECT_FALSE(d.IsEmpty());
}

TEST(DtaAnalysisTest, SinkAcceptingReachableViaMissingInternalKey) {
  Dta d(1, 1);
  d.AddTransition(kAbsentChild, kAbsentChild, 0, 0);
  // No internal transitions stored: any 2-node tree dies in the sink.
  d.SetAccepting(d.sink(), true);
  EXPECT_FALSE(d.IsEmpty());
}

TEST(DtaAnalysisTest, EquivalenceDistinguishes) {
  Dta a = HasBAutomaton();
  Dta b = RootIsAAutomaton();
  EXPECT_FALSE(Dta::Equivalent(a, b));
  EXPECT_TRUE(Dta::Equivalent(a, a));
}

TEST(NtaTest, HandBuiltNondeterminism) {
  // Guess at the leaf whether to be in state 0 or 1; accept only from 1.
  Nta n(2, 1);
  n.AddTransition(kAbsentChild, kAbsentChild, 0, 0);
  n.AddTransition(kAbsentChild, kAbsentChild, 0, 1);
  n.AddTransition(0, kAbsentChild, 0, 0);
  n.AddTransition(1, kAbsentChild, 0, 1);
  n.SetAccepting(1, true);
  Dta d = n.Determinize();
  BinaryTree chain = ChainTree(4, 1);
  EXPECT_TRUE(d.Accepts(chain, Labels(chain)));
}

}  // namespace
}  // namespace qpwm
