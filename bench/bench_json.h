// Shared JSON emission for the plan benches. Two pieces:
//
//   * JsonWriter — a tiny ordered writer (objects, arrays, scalars) with
//     comma management; no external dependency.
//   * UpdateBenchJsonSection — read-modify-write of one top-level key in a
//     JSON object file, so bench_plan_scale and bench_local_scheme can both
//     contribute sections to the same BENCH_plan.json artifact.
//
// The merge scanner only has to understand files this header itself wrote
// (a flat object of sections), but it parses strings/nesting properly so a
// hand-edited file does not get silently corrupted.
#ifndef QPWM_BENCH_BENCH_JSON_H_
#define QPWM_BENCH_BENCH_JSON_H_

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace qpwm {

/// Peak resident set size of the process in KiB (0 when unavailable). The
/// kernel's high-water mark is monotone over the process lifetime, so sweep
/// benches should visit instance sizes in ascending order and read each
/// sample as "peak so far", dominated by the current (largest) instance.
inline uint64_t PeakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<uint64_t>(ru.ru_maxrss);
#else
  return 0;
#endif
}

class JsonWriter {
 public:
  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return Close(']'); }

  JsonWriter& Key(std::string_view k) {
    Comma();
    AppendString(k);
    out_ += ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& String(std::string_view v) {
    Comma();
    AppendString(v);
    return *this;
  }
  JsonWriter& UInt(uint64_t v) {
    Comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Int(int64_t v) {
    Comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Bool(bool v) {
    Comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& Double(double v) {
    Comma();
    if (!std::isfinite(v)) {
      out_ += "null";
      return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out_ += buf;
    return *this;
  }

  const std::string& str() const { return out_; }

 private:
  void Comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!needs_comma_.empty() && needs_comma_.back()) out_ += ',';
    if (!needs_comma_.empty()) needs_comma_.back() = true;
  }

  JsonWriter& Open(char c) {
    Comma();
    out_ += c;
    needs_comma_.push_back(false);
    return *this;
  }

  JsonWriter& Close(char c) {
    needs_comma_.pop_back();
    out_ += c;
    if (!needs_comma_.empty()) needs_comma_.back() = true;
    return *this;
  }

  void AppendString(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        default: out_ += c;
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> needs_comma_;
  bool pending_value_ = false;
};

namespace bench_json_internal {

inline void SkipWs(const std::string& s, size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

inline bool SkipString(const std::string& s, size_t& i) {
  if (i >= s.size() || s[i] != '"') return false;
  for (++i; i < s.size(); ++i) {
    if (s[i] == '\\') {
      ++i;
    } else if (s[i] == '"') {
      ++i;
      return true;
    }
  }
  return false;
}

// Advances past one JSON value (object, array, string, or primitive).
inline bool SkipValue(const std::string& s, size_t& i) {
  SkipWs(s, i);
  if (i >= s.size()) return false;
  if (s[i] == '"') return SkipString(s, i);
  if (s[i] == '{' || s[i] == '[') {
    int depth = 0;
    for (; i < s.size(); ++i) {
      if (s[i] == '"') {
        if (!SkipString(s, i)) return false;
        --i;  // loop increment compensates
      } else if (s[i] == '{' || s[i] == '[') {
        ++depth;
      } else if (s[i] == '}' || s[i] == ']') {
        if (--depth == 0) {
          ++i;
          return true;
        }
      }
    }
    return false;
  }
  while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ']' &&
         !std::isspace(static_cast<unsigned char>(s[i]))) {
    ++i;
  }
  return true;
}

// Splits a top-level JSON object into (key, raw value) pairs. Returns false
// on malformed input (caller then starts a fresh file).
inline bool ParseSections(const std::string& s,
                          std::vector<std::pair<std::string, std::string>>& out) {
  size_t i = 0;
  SkipWs(s, i);
  if (i >= s.size() || s[i] != '{') return false;
  ++i;
  SkipWs(s, i);
  if (i < s.size() && s[i] == '}') return true;
  for (;;) {
    SkipWs(s, i);
    const size_t key_begin = i;
    if (!SkipString(s, i)) return false;
    // Key without the surrounding quotes, escapes left as-is (sections this
    // helper writes never contain escapes).
    std::string key = s.substr(key_begin + 1, i - key_begin - 2);
    SkipWs(s, i);
    if (i >= s.size() || s[i] != ':') return false;
    ++i;
    SkipWs(s, i);
    const size_t value_begin = i;
    if (!SkipValue(s, i)) return false;
    out.emplace_back(std::move(key), s.substr(value_begin, i - value_begin));
    SkipWs(s, i);
    if (i < s.size() && s[i] == ',') {
      ++i;
      continue;
    }
    return i < s.size() && s[i] == '}';
  }
}

}  // namespace bench_json_internal

/// Inserts or replaces top-level key `section` with `payload` (a serialized
/// JSON value) in the object stored at `path`; creates the file if missing
/// or unreadable. Returns false only when the file cannot be written.
inline bool UpdateBenchJsonSection(const std::string& path, const std::string& section,
                                   const std::string& payload) {
  std::vector<std::pair<std::string, std::string>> sections;
  {
    std::ifstream in(path);
    if (in) {
      std::stringstream buffer;
      buffer << in.rdbuf();
      std::vector<std::pair<std::string, std::string>> parsed;
      if (bench_json_internal::ParseSections(buffer.str(), parsed)) {
        sections = std::move(parsed);
      }
    }
  }
  bool replaced = false;
  for (auto& [key, value] : sections) {
    if (key == section) {
      value = payload;
      replaced = true;
    }
  }
  if (!replaced) sections.emplace_back(section, payload);

  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "{\n";
  for (size_t i = 0; i < sections.size(); ++i) {
    out << "  \"" << sections[i].first << "\": " << sections[i].second;
    if (i + 1 < sections.size()) out << ',';
    out << '\n';
  }
  out << "}\n";
  return static_cast<bool>(out);
}

}  // namespace qpwm

#endif  // QPWM_BENCH_BENCH_JSON_H_
