#include "qpwm/relational/table.h"

#include <unordered_map>

#include "qpwm/util/check.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"

namespace qpwm {

Table::Table(std::string name, std::vector<ColumnSpec> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  for (const ColumnSpec& c : columns_) {
    if (c.role == ColumnRole::kWeight) {
      QPWM_CHECK(!c.weight_of.empty());
      QPWM_CHECK(ColumnIndex(c.weight_of).ok());
    }
  }
}

Result<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("table " + name_ + " has no column '" + name + "'");
}

Status Table::AddRow(std::vector<Cell> row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(StrCat("row width ", row.size(), " != schema width ",
                                          columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const bool is_weight = columns_[i].role == ColumnRole::kWeight;
    if (is_weight != std::holds_alternative<Weight>(row[i])) {
      return Status::InvalidArgument("cell kind does not match column role in column '" +
                                     columns_[i].name + "'");
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

const std::string& Table::KeyAt(size_t row, size_t col) const {
  QPWM_CHECK(columns_[col].role == ColumnRole::kKey);
  return std::get<std::string>(rows_[row][col]);
}

Weight Table::WeightAt(size_t row, size_t col) const {
  QPWM_CHECK(columns_[col].role == ColumnRole::kWeight);
  return std::get<Weight>(rows_[row][col]);
}

void Table::SetWeightAt(size_t row, size_t col, Weight w) {
  QPWM_CHECK(columns_[col].role == ColumnRole::kWeight);
  rows_[row][col] = w;
}

std::vector<size_t> Table::WeightColumns() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].role == ColumnRole::kWeight) out.push_back(i);
  }
  return out;
}

Table& Database::AddTable(Table t) {
  tables_.push_back(std::move(t));
  return tables_.back();
}

Result<const Table*> Database::Find(const std::string& name) const {
  for (const Table& t : tables_) {
    if (t.name() == name) return &t;
  }
  return Status::NotFound("no table named '" + name + "'");
}

Result<Table*> Database::FindMutable(const std::string& name) {
  for (Table& t : tables_) {
    if (t.name() == name) return &t;
  }
  return Status::NotFound("no table named '" + name + "'");
}

Result<RelationalInstance> ToWeightedStructure(const Database& db) {
  // Pass 1: intern every distinct key value.
  std::unordered_map<std::string, ElemId> intern;
  std::vector<std::string> names;
  auto intern_value = [&](const std::string& v) {
    auto [it, inserted] = intern.emplace(v, static_cast<ElemId>(names.size()));
    if (inserted) names.push_back(v);
    return it->second;
  };
  for (const Table& t : db.tables()) {
    for (size_t r = 0; r < t.num_rows(); ++r) {
      for (size_t c = 0; c < t.columns().size(); ++c) {
        if (t.columns()[c].role == ColumnRole::kKey) intern_value(t.KeyAt(r, c));
      }
    }
  }

  // Pass 2: build signature / relations over key columns.
  Signature sig;
  for (const Table& t : db.tables()) {
    uint32_t key_arity = 0;
    for (const ColumnSpec& c : t.columns()) {
      if (c.role == ColumnRole::kKey) ++key_arity;
    }
    sig.AddRelation(t.name(), key_arity);
  }

  RelationalInstance out;
  out.structure = Structure(std::move(sig), names.size());
  for (ElemId e = 0; e < names.size(); ++e) {
    out.structure.SetElementName(e, names[e]);
  }
  out.weights = WeightMap(1, names.size());

  std::vector<bool>& has_weight = out.has_weight;
  has_weight.assign(names.size(), false);
  for (size_t ti = 0; ti < db.tables().size(); ++ti) {
    const Table& t = db.tables()[ti];
    for (size_t r = 0; r < t.num_rows(); ++r) {
      Tuple tuple;
      for (size_t c = 0; c < t.columns().size(); ++c) {
        if (t.columns()[c].role == ColumnRole::kKey) {
          tuple.push_back(intern.at(t.KeyAt(r, c)));
        }
      }
      out.structure.AddTuple(ti, std::move(tuple));

      for (size_t c : t.WeightColumns()) {
        size_t key_col = t.ColumnIndex(t.columns()[c].weight_of).ValueOrDie();
        ElemId e = intern.at(t.KeyAt(r, key_col));
        Weight w = t.WeightAt(r, c);
        if (has_weight[e] && out.weights.GetElem(e) != w) {
          return Status::InvalidArgument("element '" + names[e] +
                                         "' receives two different weights");
        }
        has_weight[e] = true;
        out.weights.SetElem(e, w);
      }
    }
  }
  out.structure.Seal();
  return out;
}

Result<Database> ApplyWeightsToDatabase(const Database& db,
                                        const RelationalInstance& instance,
                                        const WeightMap& weights) {
  Database out = db;
  for (Table& t : const_cast<std::vector<Table>&>(out.tables())) {
    for (size_t c : t.WeightColumns()) {
      size_t key_col = t.ColumnIndex(t.columns()[c].weight_of).ValueOrDie();
      for (size_t r = 0; r < t.num_rows(); ++r) {
        auto elem = instance.structure.FindElement(t.KeyAt(r, key_col));
        if (!elem.ok()) return elem.status();
        t.SetWeightAt(r, c, weights.GetElem(elem.value()));
      }
    }
  }
  return out;
}

Table SubsetRowsAttack(const Table& table, double keep_frac, Rng& rng) {
  Table out(table.name(), table.columns());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (rng.Bernoulli(keep_frac)) {
      Status added = out.AddRow(table.row(r));
      QPWM_CHECK(added.ok());
    }
  }
  return out;
}

AlignedSuspect AlignSuspectInstance(const RelationalInstance& original,
                                    const RelationalInstance& suspect) {
  AlignedSuspect out;
  out.weights = original.weights;
  const size_t n = original.structure.universe_size();
  out.present.assign(n, false);
  for (ElemId e = 0; e < n; ++e) {
    auto found = suspect.structure.FindElement(original.structure.ElementName(e));
    if (!found.ok()) {
      ++out.missing;
      continue;
    }
    // An element can survive in a key column while the row carrying its
    // weight is gone: its suspect weight is unknown, so it must be served as
    // erased, not as a fabricated 0.
    const bool original_weighted =
        e < original.has_weight.size() && original.has_weight[e];
    const bool suspect_weighted = found.value() < suspect.has_weight.size() &&
                                  suspect.has_weight[found.value()];
    if (original_weighted && !suspect_weighted) {
      ++out.missing;
      continue;
    }
    if (suspect_weighted) {
      out.weights.SetElem(e, suspect.weights.GetElem(found.value()));
    }
    out.present[e] = true;
    ++out.matched;
  }
  out.extra = suspect.structure.universe_size() - out.matched;
  return out;
}

Database TravelAgencyDatabase() {
  Database db;
  Table route("Route", {{"travel", ColumnRole::kKey, ""},
                        {"transport", ColumnRole::kKey, ""}});
  QPWM_CHECK(route.AddRow({std::string("India discovery"), std::string("F21")}).ok());
  QPWM_CHECK(route.AddRow({std::string("India discovery"), std::string("G12")}).ok());
  QPWM_CHECK(route.AddRow({std::string("Nepal Trek"), std::string("F21")}).ok());
  QPWM_CHECK(route.AddRow({std::string("Nepal Trek"), std::string("R5")}).ok());
  QPWM_CHECK(route.AddRow({std::string("Nepal Trek"), std::string("F2")}).ok());
  QPWM_CHECK(route.AddRow({std::string("TourNepal"), std::string("F2")}).ok());
  QPWM_CHECK(route.AddRow({std::string("TourNepal"), std::string("T33")}).ok());
  db.AddTable(std::move(route));

  Table timetable("Timetable", {{"transport", ColumnRole::kKey, ""},
                                {"departure", ColumnRole::kKey, ""},
                                {"arrival", ColumnRole::kKey, ""},
                                {"type", ColumnRole::kKey, ""},
                                {"duration", ColumnRole::kWeight, "transport"}});
  auto minutes = [](Weight h, Weight m) { return h * 60 + m; };
  QPWM_CHECK(timetable.AddRow({std::string("F21"), std::string("Paris"),
                               std::string("Delhi"), std::string("plane"),
                               minutes(10, 35)}).ok());
  QPWM_CHECK(timetable.AddRow({std::string("G12"), std::string("Delhi"),
                               std::string("Nawalgarh"), std::string("bus"),
                               minutes(6, 20)}).ok());
  QPWM_CHECK(timetable.AddRow({std::string("R5"), std::string("Delhi"),
                               std::string("Kathmandu"), std::string("plane"),
                               minutes(6, 15)}).ok());
  QPWM_CHECK(timetable.AddRow({std::string("F2"), std::string("Kathmandu"),
                               std::string("Simikot"), std::string("plane"),
                               minutes(3, 30)}).ok());
  QPWM_CHECK(timetable.AddRow({std::string("T33"), std::string("Kathmandu"),
                               std::string("Daman"), std::string("jeep"),
                               minutes(2, 50)}).ok());
  QPWM_CHECK(timetable.AddRow({std::string("G13"), std::string("Kathmandu"),
                               std::string("Paris"), std::string("plane"),
                               minutes(10, 0)}).ok());
  db.AddTable(std::move(timetable));
  return db;
}

Database RandomTravelDatabase(size_t travels, size_t transports, size_t max_legs,
                              Rng& rng) {
  static const char* kCities[] = {"Paris",   "Delhi",  "Kathmandu", "Daman",
                                  "Simikot", "Lhasa",  "Pokhara",   "Agra"};
  static const char* kTypes[] = {"plane", "bus", "jeep", "train"};
  Database db;

  Table route("Route", {{"travel", ColumnRole::kKey, ""},
                        {"transport", ColumnRole::kKey, ""}});
  for (size_t i = 0; i < travels; ++i) {
    size_t legs = 1 + rng.Below(max_legs);
    for (size_t leg = 0; leg < legs; ++leg) {
      QPWM_CHECK(route.AddRow({StrCat("travel", i),
                               StrCat("t", rng.Below(transports))}).ok());
    }
  }
  db.AddTable(std::move(route));

  Table timetable("Timetable", {{"transport", ColumnRole::kKey, ""},
                                {"departure", ColumnRole::kKey, ""},
                                {"arrival", ColumnRole::kKey, ""},
                                {"type", ColumnRole::kKey, ""},
                                {"duration", ColumnRole::kWeight, "transport"}});
  for (size_t j = 0; j < transports; ++j) {
    size_t from = rng.Below(8);
    size_t to = (from + 1 + rng.Below(7)) % 8;
    QPWM_CHECK(timetable.AddRow({StrCat("t", j), std::string(kCities[from]),
                                 std::string(kCities[to]),
                                 std::string(kTypes[rng.Below(4)]),
                                 rng.Uniform(30, 900)}).ok());
  }
  db.AddTable(std::move(timetable));
  return db;
}

}  // namespace qpwm
