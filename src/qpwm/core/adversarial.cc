#include "qpwm/core/adversarial.h"

#include <algorithm>

#include "qpwm/util/check.h"

namespace qpwm {
namespace {

class LocalCarrier : public PairCarrier {
 public:
  explicit LocalCarrier(const LocalScheme& base) : base_(&base) {}
  size_t NumPairs() const override { return base_->CapacityBits(); }
  void Apply(const BitVec& expanded_mark, WeightMap& weights,
             PairEncoding encoding) const override {
    base_->marking().Apply(expanded_mark, weights, encoding);
  }
  Result<std::vector<Weight>> PairDeltas(const WeightMap& original,
                                         const AnswerServer& suspect) const override {
    return base_->PairDeltas(original, suspect);
  }

 private:
  const LocalScheme* base_;
};

class TreeCarrier : public PairCarrier {
 public:
  explicit TreeCarrier(const TreeScheme& base) : base_(&base) {}
  size_t NumPairs() const override { return base_->CapacityBits(); }
  void Apply(const BitVec& expanded_mark, WeightMap& weights,
             PairEncoding encoding) const override {
    base_->ApplyMark(expanded_mark, weights, encoding);
  }
  Result<std::vector<Weight>> PairDeltas(const WeightMap& original,
                                         const AnswerServer& suspect) const override {
    return base_->PairDeltas(original, suspect);
  }

 private:
  const TreeScheme* base_;
};

}  // namespace

AdversarialScheme::AdversarialScheme(std::unique_ptr<PairCarrier> carrier,
                                     size_t redundancy)
    : carrier_(std::move(carrier)), redundancy_(redundancy) {
  QPWM_CHECK_GE(redundancy, 1u);
  capacity_ = carrier_->NumPairs() / redundancy_;
}

AdversarialScheme::AdversarialScheme(const LocalScheme& base, size_t redundancy)
    : AdversarialScheme(std::make_unique<LocalCarrier>(base), redundancy) {}

AdversarialScheme::AdversarialScheme(const TreeScheme& base, size_t redundancy)
    : AdversarialScheme(std::make_unique<TreeCarrier>(base), redundancy) {}

WeightMap AdversarialScheme::Embed(const WeightMap& original,
                                   const BitVec& message) const {
  QPWM_CHECK_EQ(message.size(), capacity_);
  // Expand the message over the pair groups; pairs beyond the last full
  // group carry a fixed 0 and are ignored by the detector.
  BitVec expanded(carrier_->NumPairs());
  for (size_t j = 0; j < capacity_; ++j) {
    for (size_t k = 0; k < redundancy_; ++k) {
      expanded.Set(j * redundancy_ + k, message.Get(j));
    }
  }
  WeightMap out = original;
  carrier_->Apply(expanded, out, PairEncoding::kAntipodal);
  return out;
}

Result<AdversarialDetection> AdversarialScheme::Detect(
    const WeightMap& original, const AnswerServer& suspect) const {
  auto deltas = carrier_->PairDeltas(original, suspect);
  if (!deltas.ok()) return deltas.status();

  AdversarialDetection out;
  out.mark = BitVec(capacity_);
  out.margins.resize(capacity_);
  out.min_margin = capacity_ == 0 ? 0.0 : 1.0;
  for (size_t j = 0; j < capacity_; ++j) {
    int votes_one = 0;
    int votes_zero = 0;
    for (size_t k = 0; k < redundancy_; ++k) {
      Weight d = deltas.value()[j * redundancy_ + k];
      if (d > 0) {
        ++votes_one;
      } else if (d < 0) {
        ++votes_zero;
      }
      // d == 0: the attacker neutralized this pair; abstain.
    }
    out.mark.Set(j, votes_one >= votes_zero);
    out.margins[j] =
        static_cast<double>(std::abs(votes_one - votes_zero)) / redundancy_;
    out.min_margin = std::min(out.min_margin, out.margins[j]);
  }
  return out;
}

}  // namespace qpwm
