#include "qpwm/core/attack.h"

#include <algorithm>

namespace qpwm {

WeightMap UniformNoiseAttack(const WeightMap& marked, Weight c, Rng& rng) {
  WeightMap out = marked;
  marked.ForEach([&](const Tuple& t, Weight w) {
    out.Set(t, w + rng.Uniform(-c, c));
  });
  return out;
}

WeightMap JitterAttack(const WeightMap& marked, double flip_prob, Rng& rng) {
  WeightMap out = marked;
  marked.ForEach([&](const Tuple& t, Weight w) {
    if (rng.Bernoulli(flip_prob)) out.Set(t, w + (rng.Coin() ? 1 : -1));
  });
  return out;
}

WeightMap RoundingAttack(const WeightMap& marked, Weight granularity) {
  QPWM_CHECK_GE(granularity, 1);
  WeightMap out = marked;
  marked.ForEach([&](const Tuple& t, Weight w) {
    Weight down = (w >= 0 ? w : w - granularity + 1) / granularity * granularity;
    Weight up = down + granularity;
    out.Set(t, (w - down <= up - w) ? down : up);
  });
  return out;
}

WeightMap GuessingPairAttack(const WeightMap& marked, const QueryIndex& index,
                             size_t guesses, Rng& rng) {
  WeightMap out = marked;
  const size_t n = index.num_active();
  if (n < 2) return out;
  for (size_t i = 0; i < guesses; ++i) {
    size_t a = rng.Below(n);
    size_t b = rng.Below(n);
    if (a == b) continue;
    // Attacker's guess at undoing a (+1, -1) pair.
    out.Add(index.active_element(a), -1);
    out.Add(index.active_element(b), +1);
  }
  return out;
}

Result<WeightMap> AveragingCollusionAttack(
    const std::vector<const WeightMap*>& copies) {
  if (copies.empty()) {
    return Status::InvalidArgument("collusion needs at least one copy");
  }
  for (size_t i = 1; i < copies.size(); ++i) {
    if (!copies[0]->SameDomain(*copies[i])) {
      return Status::InvalidArgument(
          "collusion copies cover different weight domains");
    }
  }
  WeightMap out = *copies[0];
  out.ForEach([&](const Tuple& t, Weight) {
    Weight sum = 0;
    for (const WeightMap* copy : copies) sum += copy->Get(t);
    const auto n = static_cast<Weight>(copies.size());
    // Round half toward the first copy's value.
    Weight rounded = sum >= 0 ? (2 * sum + n) / (2 * n) : -((-2 * sum + n) / (2 * n));
    out.Set(t, rounded);
  });
  return out;
}

void TamperedAnswerServer::Tamper(const Tuple& params, AnswerSet& rows) const {
  if (!erased_.empty()) {
    rows.erase(std::remove_if(rows.begin(), rows.end(),
                              [&](const AnswerRow& row) {
                                return erased_.count(row.element) != 0;
                              }),
               rows.end());
  }
  auto it = inserted_at_.find(params);
  if (it != inserted_at_.end()) {
    rows.insert(rows.end(), it->second.begin(), it->second.end());
  }
  rows.insert(rows.end(), inserted_everywhere_.begin(), inserted_everywhere_.end());
}

AnswerSet TamperedAnswerServer::Answer(const Tuple& params) const {
  AnswerSet out = base_->Answer(params);
  Tamper(params, out);
  return out;
}

std::vector<AnswerSet> TamperedAnswerServer::AnswerBatch(
    const std::vector<Tuple>& params) const {
  std::vector<AnswerSet> out = AnswerAll(*base_, params);
  for (size_t i = 0; i < params.size(); ++i) Tamper(params[i], out[i]);
  return out;
}

std::vector<Tuple> SampleSubset(const std::vector<Tuple>& elements, double frac,
                                Rng& rng) {
  std::vector<Tuple> out;
  for (const Tuple& t : elements) {
    if (rng.Bernoulli(frac)) out.push_back(t);
  }
  return out;
}

std::vector<Tuple> SubsetDeletionAttack(const QueryIndex& index, double drop_frac,
                                        Rng& rng) {
  std::vector<Tuple> elements;
  elements.reserve(index.num_active());
  for (size_t w = 0; w < index.num_active(); ++w) {
    elements.push_back(index.active_element(w));
  }
  return SampleSubset(elements, drop_frac, rng);
}

void TupleInsertionAttack(TamperedAnswerServer& server, const QueryIndex& index,
                          const WeightMap& marked, size_t count, Rng& rng) {
  if (index.num_params() == 0) return;
  // Plausible weight range: the marked map's observed min..max.
  Weight lo = 0, hi = 0;
  bool first = true;
  marked.ForEach([&](const Tuple&, Weight w) {
    if (first) {
      lo = hi = w;
      first = false;
    } else {
      lo = std::min(lo, w);
      hi = std::max(hi, w);
    }
  });
  const ElemId fresh_base =
      static_cast<ElemId>(index.structure().universe_size());
  const uint32_t s = marked.s();
  for (size_t i = 0; i < count; ++i) {
    Tuple fresh(s, fresh_base + static_cast<ElemId>(i));
    AnswerRow row{std::move(fresh), rng.Uniform(lo, hi)};
    server.InsertAt(index.param(rng.Below(index.num_params())), std::move(row));
  }
}

}  // namespace qpwm
