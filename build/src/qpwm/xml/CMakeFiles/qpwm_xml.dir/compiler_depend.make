# Empty compiler generated dependencies file for qpwm_xml.
# This may be replaced when dependencies are built.
