#include "qpwm/logic/evaluator.h"

#include "qpwm/util/check.h"
#include "qpwm/util/str.h"

namespace qpwm {

Result<bool> Evaluator::Eval(const Formula& f, Environment& env) const {
  switch (f.kind) {
    case FormulaKind::kAtom: {
      auto rel = g_.signature().Find(f.relation);
      if (!rel.ok()) return rel.status();
      const Relation& r = g_.relation(rel.value());
      if (f.vars.size() != r.arity()) {
        return Status::InvalidArgument(
            StrCat("atom ", f.relation, " arity mismatch: formula has ", f.vars.size(),
                   ", relation has ", r.arity()));
      }
      Tuple t;
      t.reserve(f.vars.size());
      for (const auto& v : f.vars) {
        auto it = env.elems.find(v);
        if (it == env.elems.end()) {
          return Status::InvalidArgument("unbound variable '" + v + "'");
        }
        t.push_back(it->second);
      }
      return r.Contains(t);
    }
    case FormulaKind::kEq: {
      auto a = env.elems.find(f.vars[0]);
      auto b = env.elems.find(f.vars[1]);
      if (a == env.elems.end() || b == env.elems.end()) {
        return Status::InvalidArgument("unbound variable in equality");
      }
      return a->second == b->second;
    }
    case FormulaKind::kSetMember: {
      auto x = env.elems.find(f.vars[0]);
      auto set = env.sets.find(f.set_var);
      if (x == env.elems.end()) {
        return Status::InvalidArgument("unbound variable '" + f.vars[0] + "'");
      }
      if (set == env.sets.end()) {
        return Status::InvalidArgument("unbound set variable '" + f.set_var + "'");
      }
      return static_cast<bool>(set->second[x->second]);
    }
    case FormulaKind::kNot: {
      auto inner = Eval(*f.left, env);
      if (!inner.ok()) return inner;
      return !inner.value();
    }
    case FormulaKind::kAnd: {
      auto a = Eval(*f.left, env);
      if (!a.ok()) return a;
      if (!a.value()) return false;
      return Eval(*f.right, env);
    }
    case FormulaKind::kOr: {
      auto a = Eval(*f.left, env);
      if (!a.ok()) return a;
      if (a.value()) return true;
      return Eval(*f.right, env);
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      const bool is_exists = f.kind == FormulaKind::kExists;
      auto saved = env.elems.find(f.quantified_var);
      bool had = saved != env.elems.end();
      ElemId old = had ? saved->second : 0;
      bool result = !is_exists;
      for (ElemId e = 0; e < g_.universe_size(); ++e) {
        env.elems[f.quantified_var] = e;
        auto inner = Eval(*f.left, env);
        if (!inner.ok()) return inner;
        if (is_exists && inner.value()) {
          result = true;
          break;
        }
        if (!is_exists && !inner.value()) {
          result = false;
          break;
        }
      }
      if (had) {
        env.elems[f.quantified_var] = old;
      } else {
        env.elems.erase(f.quantified_var);
      }
      return result;
    }
    case FormulaKind::kExistsSet:
    case FormulaKind::kForallSet: {
      const bool is_exists = f.kind == FormulaKind::kExistsSet;
      const size_t n = g_.universe_size();
      // Naive subset enumeration guardrail: 2^n environments. A recoverable
      // error, not a process abort — callers feed user-sized structures here.
      if (n > 24) {
        return Status::InvalidArgument(
            StrCat("set quantifier over a universe of ", n,
                   " elements exceeds the naive-enumeration limit of 24"));
      }
      auto saved = env.sets.find(f.set_var);
      bool had = saved != env.sets.end();
      std::vector<bool> old;
      if (had) old = saved->second;
      bool result = !is_exists;
      for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
        std::vector<bool> subset(n);
        for (size_t i = 0; i < n; ++i) subset[i] = (mask >> i) & 1;
        env.sets[f.set_var] = std::move(subset);
        auto inner = Eval(*f.left, env);
        if (!inner.ok()) return inner;
        if (is_exists && inner.value()) {
          result = true;
          break;
        }
        if (!is_exists && !inner.value()) {
          result = false;
          break;
        }
      }
      if (had) {
        env.sets[f.set_var] = std::move(old);
      } else {
        env.sets.erase(f.set_var);
      }
      return result;
    }
  }
  return Status::Internal("unreachable formula kind");
}

bool Evaluator::MustEval(const Formula& f, Environment& env) const {
  auto r = Eval(f, env);
  QPWM_CHECK(r.ok());
  return r.value();
}

}  // namespace qpwm
