file(REMOVE_RECURSE
  "libqpwm_util.a"
)
