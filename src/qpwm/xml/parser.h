// Hand-rolled XML parser: elements, attributes, text, comments, the XML
// declaration, and the five predefined entities. Whitespace-only text
// between elements is dropped (document-centric XML, as in the paper's
// Example 4). Errors carry byte offsets.
#ifndef QPWM_XML_PARSER_H_
#define QPWM_XML_PARSER_H_

#include <string_view>

#include "qpwm/util/status.h"
#include "qpwm/xml/dom.h"

namespace qpwm {

/// Resource limits on a parse. Inputs exceeding a limit are rejected with a
/// clean kParseError (never a crash or stack overflow) — the guard against
/// hostile "XML bomb" inputs in the suspect-document path.
struct XmlParseLimits {
  /// Maximum element nesting depth. The parser recurses one frame per level,
  /// so this bounds stack use. 0 disables the check.
  size_t max_depth = 4096;
  /// Maximum input size in bytes. 0 disables the check.
  size_t max_bytes = 64u << 20;
};

/// Parses an XML document.
[[nodiscard]] Result<XmlDocument> ParseXml(std::string_view input,
                             const XmlParseLimits& limits = {});

/// Parses, aborting on error — for documents embedded in code.
XmlDocument MustParseXml(std::string_view input);

}  // namespace qpwm

#endif  // QPWM_XML_PARSER_H_
