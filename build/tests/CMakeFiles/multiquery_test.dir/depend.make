# Empty dependencies file for multiquery_test.
# This may be replaced when dependencies are built.
