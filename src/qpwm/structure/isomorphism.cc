#include "qpwm/structure/isomorphism.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <vector>

#include "qpwm/util/check.h"
#include "qpwm/util/hash.h"

namespace qpwm {
namespace {

constexpr uint64_t kIndividualizeSalt = 0x517CC1B727220A95ULL;
constexpr size_t kSearchBudget = 1u << 20;

void Push32(std::string& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

class Canonicalizer {
 public:
  Canonicalizer(const Structure& s, const Tuple& dist)
      : s_(s), dist_(dist), n_(s.universe_size()), incidence_(s) {}

  std::string Run() {
    // One scratch slot per possible recursion depth; sized up-front so the
    // outer vector is never reallocated while parent frames hold references
    // into it (each individualization shrinks a cell, so depth <= n_).
    depth_scratch_.resize(n_ + 1);
    std::vector<uint64_t> colors = InitialColors();
    Refine(colors);
    Search(colors, 0);
    QPWM_CHECK(best_.has_value());
    return std::move(*best_);
  }

 private:
  std::vector<uint64_t> InitialColors() const {
    std::vector<uint64_t> colors(n_, 0xC0FFEE1234ULL);
    // Distinguished positions are part of the type: a ~rho b requires the
    // isomorphism to map the i-th constant to the i-th constant.
    for (size_t i = 0; i < dist_.size(); ++i) {
      colors[dist_[i]] = HashCombine(colors[dist_[i]], 0xD15717 + i);
    }
    return colors;
  }

  // One-step color refinement signature of element e.
  uint64_t Signature(ElemId e, const std::vector<uint64_t>& colors) {
    contrib_.clear();
    for (const auto& entry : incidence_.Incident(e)) {
      const TupleRef t = s_.relation(entry.relation).tuple(entry.tuple_index);
      for (size_t pos = 0; pos < t.size(); ++pos) {
        if (t[pos] != e) continue;
        uint64_t h = HashCombine(0xABCD, entry.relation);
        h = HashCombine(h, pos);
        for (ElemId x : t) h = HashCombine(h, colors[x]);
        contrib_.push_back(h);
      }
    }
    std::sort(contrib_.begin(), contrib_.end());
    uint64_t out = colors[e];
    for (uint64_t c : contrib_) out = HashCombine(out, c);
    return out;
  }

  // Iterates color refinement until the induced partition is stable.
  void Refine(std::vector<uint64_t>& colors) {
    std::vector<uint32_t> prev_partition = PartitionRanks(colors);
    for (size_t round = 0; round < n_ + 1; ++round) {
      refine_next_.resize(n_);
      for (ElemId e = 0; e < n_; ++e) refine_next_[e] = Signature(e, colors);
      colors.swap(refine_next_);
      std::vector<uint32_t> partition = PartitionRanks(colors);
      if (partition == prev_partition) break;
      prev_partition = std::move(partition);
    }
  }

  // Dense ranks of colors: partition[e] = index of colors[e] among sorted
  // distinct color values. Isomorphism-invariant.
  std::vector<uint32_t> PartitionRanks(const std::vector<uint64_t>& colors) {
    sorted_colors_.assign(colors.begin(), colors.end());
    std::sort(sorted_colors_.begin(), sorted_colors_.end());
    sorted_colors_.erase(std::unique(sorted_colors_.begin(), sorted_colors_.end()),
                         sorted_colors_.end());
    std::vector<uint32_t> out(n_);
    for (ElemId e = 0; e < n_; ++e) {
      out[e] = static_cast<uint32_t>(
          std::lower_bound(sorted_colors_.begin(), sorted_colors_.end(), colors[e]) -
          sorted_colors_.begin());
    }
    return out;
  }

  // True if swapping a and b is an automorphism fixing everything else.
  bool AreTwins(ElemId a, ElemId b) const {
    auto swapped_ok = [&](ElemId source) {
      for (const auto& entry : incidence_.Incident(source)) {
        const TupleRef t = s_.relation(entry.relation).tuple(entry.tuple_index);
        Tuple swapped = t.ToTuple();
        for (ElemId& x : swapped) {
          if (x == a) {
            x = b;
          } else if (x == b) {
            x = a;
          }
        }
        if (!s_.relation(entry.relation).Contains(swapped)) return false;
      }
      return true;
    };
    return swapped_ok(a) && swapped_ok(b);
  }

  void Search(const std::vector<uint64_t>& colors, size_t depth) {
    if (++nodes_ > kSearchBudget) return;  // Keep best-so-far.

    std::vector<uint32_t> partition = PartitionRanks(colors);
    uint32_t num_cells = 0;
    for (uint32_t p : partition) num_cells = std::max(num_cells, p + 1);

    if (num_cells == n_) {  // Discrete: partition ranks give the ordering.
      std::string enc = Encode(partition);
      if (!best_ || enc < *best_) best_ = std::move(enc);
      return;
    }

    // Pick the first (lowest-rank) non-singleton cell.
    std::vector<uint32_t> cell_size(num_cells, 0);
    for (uint32_t p : partition) ++cell_size[p];
    uint32_t target = 0;
    while (cell_size[target] <= 1) ++target;

    std::vector<ElemId> members;
    for (ElemId e = 0; e < n_; ++e) {
      if (partition[e] == target) members.push_back(e);
    }

    std::vector<ElemId> tried;
    for (ElemId e : members) {
      bool twin_of_tried = false;
      for (ElemId prev : tried) {
        if (AreTwins(prev, e)) {
          twin_of_tried = true;
          break;
        }
      }
      if (twin_of_tried) continue;
      tried.push_back(e);

      // One scratch color vector per recursion depth, reused across every
      // individualization candidate at that depth (no per-candidate heap
      // allocation once warm).
      std::vector<uint64_t>& next = depth_scratch_[depth];
      next.assign(colors.begin(), colors.end());
      next[e] = HashCombine(next[e], kIndividualizeSalt);
      Refine(next);
      Search(next, depth + 1);
    }
  }

  // Encoding of the structure under the ordering rank[e] = position of e.
  std::string Encode(const std::vector<uint32_t>& rank) const {
    size_t words = 2 + dist_.size();
    for (size_t r = 0; r < s_.num_relations(); ++r) {
      words += 2 + s_.relation(r).size() * s_.relation(r).arity();
    }
    std::string out;
    out.reserve(words * 4);
    Push32(out, static_cast<uint32_t>(n_));
    Push32(out, static_cast<uint32_t>(dist_.size()));
    for (ElemId e : dist_) Push32(out, rank[e]);
    for (size_t r = 0; r < s_.num_relations(); ++r) {
      const TupleList tuples = s_.relation(r).tuples();
      std::vector<Tuple> remapped;
      remapped.reserve(tuples.size());
      for (TupleRef t : tuples) {
        Tuple m;
        m.reserve(t.size());
        for (ElemId e : t) m.push_back(rank[e]);
        remapped.push_back(std::move(m));
      }
      std::sort(remapped.begin(), remapped.end());
      Push32(out, static_cast<uint32_t>(r));
      Push32(out, static_cast<uint32_t>(remapped.size()));
      for (const Tuple& t : remapped) {
        for (ElemId e : t) Push32(out, e);
      }
    }
    return out;
  }

  const Structure& s_;
  const Tuple& dist_;
  const size_t n_;
  IncidenceIndex incidence_;
  std::optional<std::string> best_;
  size_t nodes_ = 0;
  // Scratch buffers (hot loops; reused to avoid per-call allocations).
  std::vector<uint64_t> contrib_;
  std::vector<uint64_t> refine_next_;
  std::vector<uint64_t> sorted_colors_;
  std::vector<std::vector<uint64_t>> depth_scratch_;
};

}  // namespace

std::string CanonicalForm(const Structure& s, const Tuple& distinguished) {
  for (ElemId e : distinguished) QPWM_CHECK_LT(e, s.universe_size());
  if (s.universe_size() == 0) return std::string("empty");
  return Canonicalizer(s, distinguished).Run();
}

bool AreIsomorphic(const Structure& s1, const Tuple& d1, const Structure& s2,
                   const Tuple& d2) {
  if (s1.universe_size() != s2.universe_size()) return false;
  if (d1.size() != d2.size()) return false;
  if (!(s1.signature() == s2.signature())) return false;
  for (size_t r = 0; r < s1.num_relations(); ++r) {
    if (s1.relation(r).size() != s2.relation(r).size()) return false;
  }
  return CanonicalForm(s1, d1) == CanonicalForm(s2, d2);
}

}  // namespace qpwm
