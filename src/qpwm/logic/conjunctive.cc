#include "qpwm/logic/conjunctive.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "qpwm/logic/locality.h"
#include "qpwm/util/check.h"
#include "qpwm/util/str.h"

namespace qpwm {

struct ConjunctiveQuery::Index {
  // For each body atom: the resolved relation and, per position, value ->
  // indices of tuples carrying that value there.
  struct AtomIndex {
    const Relation* relation = nullptr;
    std::vector<std::unordered_map<ElemId, std::vector<uint32_t>>> by_pos;
  };
  std::vector<AtomIndex> atoms;
};

ConjunctiveQuery::ConjunctiveQuery(std::vector<CqAtom> body, uint32_t r, uint32_t s)
    : body_(std::move(body)), r_(r), s_(s) {
  std::vector<bool> result_seen(s_, false);
  for (const CqAtom& atom : body_) {
    for (const CqTerm& term : atom.terms) {
      switch (term.kind) {
        case CqTerm::Kind::kParam:
          QPWM_CHECK_LT(term.index, r_);
          break;
        case CqTerm::Kind::kResult:
          QPWM_CHECK_LT(term.index, s_);
          result_seen[term.index] = true;
          break;
        case CqTerm::Kind::kJoin:
          num_join_ = std::max(num_join_, term.index + 1);
          break;
      }
    }
  }
  // Every result position must be constrained by the body (safe queries).
  for (bool seen : result_seen) QPWM_CHECK(seen);
}

ConjunctiveQuery::~ConjunctiveQuery() = default;
ConjunctiveQuery::ConjunctiveQuery(ConjunctiveQuery&&) noexcept = default;
ConjunctiveQuery& ConjunctiveQuery::operator=(ConjunctiveQuery&&) noexcept = default;

Result<ConjunctiveQuery> ConjunctiveQuery::Parse(std::string_view text) {
  std::vector<CqAtom> body;
  uint32_t max_param = 0, max_result = 0;
  bool has_param = false, has_result = false;

  size_t i = 0;
  auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  };
  while (true) {
    skip_ws();
    if (i >= text.size()) break;
    // Relation name.
    size_t start = i;
    while (i < text.size() && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                               text[i] == '_')) {
      ++i;
    }
    if (i == start) return Status::ParseError(StrCat("expected relation at ", i));
    CqAtom atom;
    atom.relation = std::string(text.substr(start, i - start));
    skip_ws();
    if (i >= text.size() || text[i] != '(') {
      return Status::ParseError("expected '(' after relation name");
    }
    ++i;
    for (;;) {
      skip_ws();
      if (i >= text.size()) return Status::ParseError("unterminated atom");
      char kind_char = text[i];
      if (kind_char != 'u' && kind_char != 'v' && kind_char != 'x') {
        return Status::ParseError(
            StrCat("expected variable u<N>/v<N>/x<N> at position ", i));
      }
      ++i;
      size_t num_start = i;
      while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      if (i == num_start) return Status::ParseError("variable needs an index");
      uint32_t index =
          static_cast<uint32_t>(std::stoul(std::string(text.substr(num_start, i - num_start))));
      if (index == 0) return Status::ParseError("variable indices are 1-based");
      CqTerm term;
      term.index = index - 1;
      if (kind_char == 'u') {
        term.kind = CqTerm::Kind::kParam;
        max_param = std::max(max_param, index);
        has_param = true;
      } else if (kind_char == 'v') {
        term.kind = CqTerm::Kind::kResult;
        max_result = std::max(max_result, index);
        has_result = true;
      } else {
        term.kind = CqTerm::Kind::kJoin;
      }
      atom.terms.push_back(term);
      skip_ws();
      if (i < text.size() && text[i] == ',') {
        ++i;
        continue;
      }
      if (i < text.size() && text[i] == ')') {
        ++i;
        break;
      }
      return Status::ParseError(StrCat("expected ',' or ')' at position ", i));
    }
    body.push_back(std::move(atom));
    skip_ws();
    if (i < text.size()) {
      if (text[i] != ',') return Status::ParseError("expected ',' between atoms");
      ++i;
    }
  }
  if (body.empty()) return Status::ParseError("empty query body");
  if (!has_result) return Status::ParseError("query needs at least one result variable");
  (void)has_param;
  return ConjunctiveQuery(std::move(body), max_param, max_result);
}

const ConjunctiveQuery::Index& ConjunctiveQuery::GetIndex(const Structure& g) const {
  qpwm::MutexLock lock(*cache_mu_);
  auto [it, inserted] = cache_.try_emplace(&g);
  if (!inserted && it->second.generation == g.generation()) {
    return *it->second.index;
  }

  auto index = std::make_unique<Index>();
  index->atoms.resize(body_.size());
  for (size_t a = 0; a < body_.size(); ++a) {
    auto rel_idx = g.signature().Find(body_[a].relation);
    QPWM_CHECK(rel_idx.ok());
    const Relation& rel = g.relation(rel_idx.value());
    QPWM_CHECK_EQ(rel.arity(), body_[a].terms.size());
    index->atoms[a].relation = &rel;
    index->atoms[a].by_pos.resize(rel.arity());
    for (uint32_t t = 0; t < rel.size(); ++t) {
      const TupleRef tuple = rel.tuple(t);
      for (size_t pos = 0; pos < tuple.size(); ++pos) {
        index->atoms[a].by_pos[pos][tuple[pos]].push_back(t);
      }
    }
  }
  it->second.generation = g.generation();
  it->second.index = std::move(index);
  return *it->second.index;
}

std::vector<Tuple> ConjunctiveQuery::Evaluate(const Structure& g,
                                              const Tuple& params) const {
  QPWM_CHECK_EQ(params.size(), r_);
  const Index& index = GetIndex(g);

  constexpr ElemId kUnbound = static_cast<ElemId>(-1);
  std::vector<ElemId> result_val(s_, kUnbound);
  std::vector<ElemId> join_val(num_join_, kUnbound);

  auto term_value = [&](const CqTerm& term) -> ElemId {
    switch (term.kind) {
      case CqTerm::Kind::kParam: return params[term.index];
      case CqTerm::Kind::kResult: return result_val[term.index];
      case CqTerm::Kind::kJoin: return join_val[term.index];
    }
    return kUnbound;
  };

  std::set<Tuple> results;
  // Backtracking join over the body atoms.
  auto recurse = [&](auto&& self, size_t atom_idx) -> void {
    if (atom_idx == body_.size()) {
      Tuple out(result_val.begin(), result_val.end());
      results.insert(std::move(out));
      return;
    }
    const CqAtom& atom = body_[atom_idx];
    const Index::AtomIndex& ai = index.atoms[atom_idx];

    // Narrow with the most selective bound position, if any.
    const std::vector<uint32_t>* candidates = nullptr;
    std::vector<uint32_t> all;
    for (size_t pos = 0; pos < atom.terms.size(); ++pos) {
      ElemId v = term_value(atom.terms[pos]);
      if (v == kUnbound) continue;
      auto hit = ai.by_pos[pos].find(v);
      if (hit == ai.by_pos[pos].end()) return;  // no tuple matches: dead end
      if (candidates == nullptr || hit->second.size() < candidates->size()) {
        candidates = &hit->second;
      }
    }
    if (candidates == nullptr) {
      all.resize(ai.relation->size());
      for (uint32_t t = 0; t < all.size(); ++t) all[t] = t;
      candidates = &all;
    }

    for (uint32_t t : *candidates) {
      const TupleRef tuple = ai.relation->tuple(t);
      // Check consistency and bind.
      std::vector<std::pair<const CqTerm*, ElemId>> bound;
      bool ok = true;
      for (size_t pos = 0; pos < atom.terms.size() && ok; ++pos) {
        const CqTerm& term = atom.terms[pos];
        ElemId current = term_value(term);
        if (current == kUnbound) {
          if (term.kind == CqTerm::Kind::kResult) {
            result_val[term.index] = tuple[pos];
          } else {
            join_val[term.index] = tuple[pos];
          }
          bound.emplace_back(&term, tuple[pos]);
        } else if (current != tuple[pos]) {
          ok = false;
        }
      }
      if (ok) self(self, atom_idx + 1);
      for (auto& [term, value] : bound) {
        (void)value;
        if (term->kind == CqTerm::Kind::kResult) {
          result_val[term->index] = kUnbound;
        } else {
          join_val[term->index] = kUnbound;
        }
      }
    }
  };
  recurse(recurse, 0);

  return std::vector<Tuple>(results.begin(), results.end());
}

std::optional<uint32_t> ConjunctiveQuery::LocalityRank() const {
  // exists x1..xj (body): quantifier rank = number of join variables. The
  // minimum is 1, not 0: the scheme types *parameter* neighborhoods, and a
  // quantifier-free atom needs radius 1 around the parameter to see which
  // results co-occur with it (the paper's own E(u, v) example has rank 1).
  return std::max<uint32_t>(1, GaifmanLocalityBound(num_join_));
}

std::string ConjunctiveQuery::Name() const {
  std::vector<std::string> atoms;
  for (const CqAtom& atom : body_) {
    std::vector<std::string> terms;
    for (const CqTerm& term : atom.terms) {
      const char* prefix = term.kind == CqTerm::Kind::kParam   ? "u"
                           : term.kind == CqTerm::Kind::kResult ? "v"
                                                                 : "x";
      terms.push_back(StrCat(prefix, term.index + 1));
    }
    atoms.push_back(StrCat(atom.relation, "(", Join(terms, ", "), ")"));
  }
  return Join(atoms, ", ");
}

}  // namespace qpwm
