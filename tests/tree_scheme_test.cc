#include <gtest/gtest.h>

#include "qpwm/core/tree_scheme.h"
#include "qpwm/logic/parser.h"
#include "qpwm/tree/mso.h"
#include "qpwm/tree/query.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

class TreeSchemeTest : public ::testing::Test {
 protected:
  TreeSchemeTest() {
    sigma_.Intern("a");
    sigma_.Intern("b");
    sigma_.Intern("c");
    query_ = CompileMso(*MustParseFormula("LEQ(u, v) & P_b(v)"), sigma_, {"u", "v"})
                 .ValueOrDie()
                 .dta;
  }

  TreeSchemeOptions Options() {
    TreeSchemeOptions o;
    o.key = {0xAB, 0xCD};
    return o;
  }

  WeightMap RandomTreeWeights(const BinaryTree& t, Rng& rng) {
    WeightMap w(1, t.size());
    for (NodeId v = 0; v < t.size(); ++v) w.SetElem(v, rng.Uniform(100, 999));
    return w;
  }

  Weight MaxQueryDrift(const BinaryTree& t, const Dta& dta, const WeightMap& w0,
                       const WeightMap& w1) {
    Weight worst = 0;
    for (NodeId a = 0; a < t.size(); ++a) {
      Weight f0 = 0, f1 = 0;
      for (NodeId b : EvaluateWa(t, t.labels(), 3, dta, 1, a)) {
        f0 += w0.GetElem(b);
        f1 += w1.GetElem(b);
      }
      worst = std::max(worst, std::abs(f1 - f0));
    }
    return worst;
  }

  Alphabet sigma_;
  Dta query_{0, 1};
};

TEST_F(TreeSchemeTest, RoundTripManyMarksSmallTree) {
  Rng rng(51);
  BinaryTree t = RandomBinaryTree(120, 3, rng);
  WeightMap w = RandomTreeWeights(t, rng);
  auto scheme = TreeScheme::Plan(t, t.labels(), 3, query_, 1, Options()).ValueOrDie();
  const size_t bits = scheme.CapacityBits();
  ASSERT_GT(bits, 0u);
  // All marks when feasible, otherwise a 64-mark random sample.
  const uint64_t total = bits <= 6 ? (uint64_t{1} << bits) : 64;
  for (uint64_t trial = 0; trial < total; ++trial) {
    BitVec mark(bits);
    if (bits <= 6) {
      mark = BitVec::FromUint64(trial, bits);
    } else {
      for (size_t i = 0; i < bits; ++i) mark.Set(i, rng.Coin());
    }
    WeightMap marked = scheme.Embed(w, mark);
    EXPECT_LE(w.LocalDistortion(marked), 1);
    EXPECT_LE(MaxQueryDrift(t, query_, w, marked), scheme.DistortionBound());
    HonestTreeServer server(t, t.labels(), 3, query_, 1, marked);
    EXPECT_EQ(scheme.Detect(w, server).ValueOrDie(), mark);
  }
}

class TreeSchemeSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TreeSchemeSizeTest, DistortionAtMostOneAndDetectable) {
  const size_t n = GetParam();
  Alphabet sigma;
  sigma.Intern("a");
  sigma.Intern("b");
  sigma.Intern("c");
  Dta query = CompileMso(*MustParseFormula("LEQ(u, v) & P_b(v)"), sigma, {"u", "v"})
                  .ValueOrDie()
                  .dta;
  Rng rng(n);
  BinaryTree t = RandomBinaryTree(n, 3, rng);
  WeightMap w(1, n);
  for (NodeId v = 0; v < n; ++v) w.SetElem(v, rng.Uniform(0, 500));

  TreeSchemeOptions opts;
  opts.key = {n, n + 1};
  auto scheme = TreeScheme::Plan(t, t.labels(), 3, query, 1, opts).ValueOrDie();
  ASSERT_GT(scheme.CapacityBits(), 0u);

  BitVec mark(scheme.CapacityBits());
  for (size_t i = 0; i < mark.size(); ++i) mark.Set(i, rng.Coin());
  WeightMap marked = scheme.Embed(w, mark);

  // Theorem 5's structural guarantee: max drift over every parameter <= 1.
  Weight worst = 0;
  for (NodeId a = 0; a < n; ++a) {
    Weight f0 = 0, f1 = 0;
    for (NodeId b : EvaluateWa(t, t.labels(), 3, query, 1, a)) {
      f0 += w.GetElem(b);
      f1 += marked.GetElem(b);
    }
    worst = std::max(worst, std::abs(f1 - f0));
  }
  EXPECT_LE(worst, 1);

  HonestTreeServer server(t, t.labels(), 3, query, 1, marked);
  EXPECT_EQ(scheme.Detect(w, server).ValueOrDie(), mark);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeSchemeSizeTest,
                         ::testing::Values(200, 500, 1200));

TEST_F(TreeSchemeTest, CapacityScalesWithTreeSize) {
  Rng rng(52);
  size_t last = 0;
  for (size_t n : {300, 900, 2700}) {
    BinaryTree t = RandomBinaryTree(n, 3, rng);
    auto scheme = TreeScheme::Plan(t, t.labels(), 3, query_, 1, Options()).ValueOrDie();
    EXPECT_GT(scheme.CapacityBits(), last);
    last = scheme.CapacityBits();
  }
}

TEST_F(TreeSchemeTest, ParamFreeQueryScheme) {
  Alphabet sigma;
  sigma.Intern("a");
  sigma.Intern("b");
  sigma.Intern("c");
  Dta query = CompileMso(*MustParseFormula("P_b(v) & ~LEAF(v)"), sigma, {"v"})
                  .ValueOrDie()
                  .dta;
  Rng rng(53);
  BinaryTree t = RandomBinaryTree(400, 3, rng);
  WeightMap w = RandomTreeWeights(t, rng);
  auto scheme = TreeScheme::Plan(t, t.labels(), 3, query, 0, Options()).ValueOrDie();
  ASSERT_GT(scheme.CapacityBits(), 0u);
  BitVec mark(scheme.CapacityBits());
  mark.Set(0, true);
  WeightMap marked = scheme.Embed(w, mark);
  // The single (empty-parameter) query drifts by at most 1 in total... per
  // region pair it cancels exactly since both pair nodes are in W together.
  Weight f0 = 0, f1 = 0;
  for (NodeId b : EvaluateWa(t, t.labels(), 3, query, 0, 0)) {
    f0 += w.GetElem(b);
    f1 += marked.GetElem(b);
  }
  EXPECT_EQ(f0, f1);  // pairs inside W cancel on the one query
  HonestTreeServer server(t, t.labels(), 3, query, 0, marked);
  EXPECT_EQ(scheme.Detect(w, server).ValueOrDie(), mark);
}

TEST_F(TreeSchemeTest, WrongTrackCountRejected) {
  Rng rng(54);
  BinaryTree t = RandomBinaryTree(50, 3, rng);
  // query_ is a 2-track automaton; claiming param_arity 0 mismatches.
  EXPECT_FALSE(TreeScheme::Plan(t, t.labels(), 3, query_, 0, Options()).ok());
}

TEST_F(TreeSchemeTest, DetectorSeesTamperedStructure) {
  Rng rng(55);
  BinaryTree t = RandomBinaryTree(300, 3, rng);
  WeightMap w = RandomTreeWeights(t, rng);
  auto scheme = TreeScheme::Plan(t, t.labels(), 3, query_, 1, Options()).ValueOrDie();
  if (scheme.CapacityBits() == 0) GTEST_SKIP();
  // A server answering a *different* tree's results: witness elements go
  // missing and detection reports failure rather than a wrong mark.
  BinaryTree other = RandomBinaryTree(10, 3, rng);
  HonestTreeServer bogus(other, other.labels(), 3, query_, 1,
                         WeightMap(1, other.size()));
  auto result = scheme.Detect(w, bogus);
  EXPECT_FALSE(result.ok());
}

TEST_F(TreeSchemeTest, ChainTreesWork) {
  BinaryTree t = ChainTree(600, 3);
  Rng rng(56);
  WeightMap w = RandomTreeWeights(t, rng);
  auto scheme = TreeScheme::Plan(t, t.labels(), 3, query_, 1, Options()).ValueOrDie();
  ASSERT_GT(scheme.CapacityBits(), 0u);
  BitVec mark(scheme.CapacityBits());
  for (size_t i = 0; i < mark.size(); i += 2) mark.Set(i, true);
  WeightMap marked = scheme.Embed(w, mark);
  HonestTreeServer server(t, t.labels(), 3, query_, 1, marked);
  EXPECT_EQ(scheme.Detect(w, server).ValueOrDie(), mark);
}

}  // namespace
}  // namespace qpwm
