#include "qpwm/logic/query.h"

#include <algorithm>

#include "qpwm/logic/evaluator.h"
#include "qpwm/logic/locality.h"
#include "qpwm/util/check.h"
#include "qpwm/util/str.h"

namespace qpwm {

std::vector<Tuple> AllParams(const Structure& g, uint32_t r) {
  // qpwm-lint: allow(legacy-tuple-vector) — building the returned parameter list (API contract)
  std::vector<Tuple> out;
  const size_t n = g.universe_size();
  if (r == 0) {
    out.push_back(Tuple{});
    return out;
  }
  size_t total = 1;
  for (uint32_t i = 0; i < r; ++i) total *= n;
  out.reserve(total);
  Tuple t(r, 0);
  for (;;) {
    out.push_back(t);
    uint32_t pos = r;
    while (pos > 0) {
      --pos;
      if (++t[pos] < n) break;
      t[pos] = 0;
      if (pos == 0) return out;
    }
  }
}

FormulaQuery::FormulaQuery(FormulaPtr f, std::vector<std::string> param_vars,
                           std::vector<std::string> result_vars)
    : formula_(std::move(f)),
      param_vars_(std::move(param_vars)),
      result_vars_(std::move(result_vars)) {
  auto free_vars = formula_->FreeVars();
  for (const auto& v : free_vars) {
    bool covered =
        std::find(param_vars_.begin(), param_vars_.end(), v) != param_vars_.end() ||
        std::find(result_vars_.begin(), result_vars_.end(), v) != result_vars_.end();
    QPWM_CHECK(covered);
  }
  QPWM_CHECK(formula_->FreeSetVars().empty());
}

std::vector<Tuple> FormulaQuery::Evaluate(const Structure& g, const Tuple& params) const {
  QPWM_CHECK_EQ(params.size(), param_vars_.size());
  Evaluator ev(g);
  Environment env;
  for (size_t i = 0; i < param_vars_.size(); ++i) env.elems[param_vars_[i]] = params[i];

  // qpwm-lint: allow(legacy-tuple-vector) — building the returned answer set (API contract)
  std::vector<Tuple> out;
  const uint32_t s = ResultArity();
  Tuple v(s, 0);
  const size_t n = g.universe_size();
  if (n == 0) return out;
  for (;;) {
    for (size_t i = 0; i < s; ++i) env.elems[result_vars_[i]] = v[i];
    if (ev.MustEval(*formula_, env)) out.push_back(v);
    uint32_t pos = s;
    bool done = s == 0;
    while (pos > 0) {
      --pos;
      if (static_cast<size_t>(++v[pos]) < n) break;
      v[pos] = 0;
      if (pos == 0) done = true;
    }
    if (done) break;
  }
  return out;
}

std::optional<uint32_t> FormulaQuery::LocalityRank() const {
  return GaifmanLocalityBound(formula_->QuantifierRank());
}

AtomQuery::AtomQuery(std::string relation, std::vector<Arg> args, uint32_t r, uint32_t s)
    : relation_(std::move(relation)), args_(std::move(args)), r_(r), s_(s) {
  // Every parameter and result position must be mentioned exactly once.
  std::vector<bool> param_seen(r_, false), result_seen(s_, false);
  for (const Arg& a : args_) {
    if (a.is_param) {
      QPWM_CHECK_LT(a.index, r_);
      QPWM_CHECK(!param_seen[a.index]);
      param_seen[a.index] = true;
    } else {
      QPWM_CHECK_LT(a.index, s_);
      QPWM_CHECK(!result_seen[a.index]);
      result_seen[a.index] = true;
    }
  }
  for (bool b : param_seen) QPWM_CHECK(b);
  for (bool b : result_seen) QPWM_CHECK(b);
}

std::unique_ptr<AtomQuery> AtomQuery::Adjacency(std::string relation) {
  return std::make_unique<AtomQuery>(std::move(relation),
                                     std::vector<Arg>{{true, 0}, {false, 0}}, 1, 1);
}

const AtomQuery::Index& AtomQuery::GetIndex(const Structure& g) const {
  // Concurrent Evaluate calls (parallel QueryIndex build) race on the lazy
  // per-structure index; the first caller builds under the lock, the rest
  // wait. unordered_map mapped references stay valid across later inserts.
  // A hit must also match the structure's generation — the address of a dead
  // structure can be reused, and in-place mutation bumps the generation.
  qpwm::MutexLock lock(cache_mu_);
  auto [it, inserted] = cache_.try_emplace(&g);
  if (!inserted && it->second.generation == g.generation()) {
    return it->second.index;
  }

  Index index;
  auto rel_idx = g.signature().Find(relation_);
  QPWM_CHECK(rel_idx.ok());
  const Relation& rel = g.relation(rel_idx.value());
  QPWM_CHECK_EQ(rel.arity(), args_.size());
  for (TupleRef t : rel.tuples()) {
    Tuple param(r_), result(s_);
    for (size_t i = 0; i < args_.size(); ++i) {
      if (args_[i].is_param) {
        param[args_[i].index] = t[i];
      } else {
        result[args_[i].index] = t[i];
      }
    }
    auto& bucket = index.by_param[param];
    if (std::find(bucket.begin(), bucket.end(), result) == bucket.end()) {
      bucket.push_back(std::move(result));
    }
  }
  it->second.generation = g.generation();
  it->second.index = std::move(index);
  return it->second.index;
}

std::vector<Tuple> AtomQuery::Evaluate(const Structure& g, const Tuple& params) const {
  QPWM_CHECK_EQ(params.size(), r_);
  const Index& index = GetIndex(g);
  auto it = index.by_param.find(params);
  if (it == index.by_param.end()) return {};
  return it->second;
}

std::string AtomQuery::Name() const {
  std::vector<std::string> rendered;
  for (const Arg& a : args_) {
    rendered.push_back(StrCat(a.is_param ? "u" : "v", a.index + 1));
  }
  return StrCat(relation_, "(", Join(rendered, ", "), ")");
}

const GaifmanGraph& DistanceQuery::GetGaifman(const Structure& g) const {
  qpwm::MutexLock lock(cache_mu_);
  auto [it, inserted] = cache_.try_emplace(&g);
  if (inserted || it->second.generation != g.generation()) {
    it->second.generation = g.generation();
    it->second.graph = std::make_unique<GaifmanGraph>(g);
  }
  return *it->second.graph;
}

std::vector<Tuple> DistanceQuery::Evaluate(const Structure& g, const Tuple& params) const {
  QPWM_CHECK_EQ(params.size(), 1u);
  const GaifmanGraph& gg = GetGaifman(g);
  // qpwm-lint: allow(legacy-tuple-vector) — building the returned answer set (API contract)
  std::vector<Tuple> out;
  for (ElemId e : gg.Sphere(params[0], rho_)) out.push_back(Tuple{e});
  return out;
}

std::string DistanceQuery::Name() const { return StrCat("dist<=", rho_, "(u, v)"); }

}  // namespace qpwm
