// bench_trace — the fingerprint tracing campaign: coalition size x collusion
// attack x codec, each cell one channel observation plus a TraceMany scan
// over a 10^5-candidate Tardos codeword pool.
//
// The acceptance headline: a design-size (c=5) coalition is traced — at
// least one coalition member accused, zero innocents — out of 10^5 candidate
// codewords, under every composed attack in the grid (collusion forge plus a
// structural deletion/insertion stack), for both the identity and hamming
// codecs. Honest cells (the untouched original, an unrelated database) must
// accuse nobody.
//
// Determinism: the headline cells are re-traced at 1, 4 and 8 threads and
// the full trace output (verdict, threshold, every accusation score at full
// double precision) must be byte-identical; any thread-dependent output
// fails the run. Timings (candidates/sec) are reported but excluded from the
// comparison — they are the only nondeterministic numbers in the file.
//
// --json[=PATH] writes/merges the "trace_campaign" section of
// BENCH_trace.json (artifact-only per the baseline policy: uploaded, never
// committed).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "qpwm/coding/coded_watermark.h"
#include "qpwm/coding/codec.h"
#include "qpwm/coding/fingerprint.h"
#include "qpwm/core/adversarial.h"
#include "qpwm/core/attack.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/parallel.h"
#include "qpwm/util/random.h"
#include "qpwm/util/str.h"
#include "qpwm/util/table.h"

using namespace qpwm;

namespace {

double TimeMs(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Full-precision canonical rendering of everything deterministic in a trace
/// result — the string the thread-identity check compares byte for byte.
std::string CanonicalTrace(const TraceResult& r) {
  std::ostringstream os;
  os.precision(17);
  os << static_cast<int>(r.kind) << '|' << r.threshold << '|'
     << r.max_achievable << '|' << r.null_variance << '|' << r.max_term << '|'
     << r.candidates << '|' << r.pruned;
  for (const Accusation& a : r.accused) {
    os << ";A" << a.recipient << ':' << a.score << ':' << a.log10_fp;
  }
  for (const Accusation& a : r.top) {
    os << ";T" << a.recipient << ':' << a.score << ':' << a.log10_fp;
  }
  return os.str();
}

struct Workload {
  Structure g;
  std::unique_ptr<AtomQuery> query;
  std::unique_ptr<QueryIndex> index;
  WeightMap weights;
  std::unique_ptr<LocalScheme> scheme;

  Workload(size_t n, uint64_t seed) : weights(1, 0) {
    Rng rng(seed);
    g = RandomBoundedDegreeGraph(n, 3, 3 * n, false, rng);
    query = AtomQuery::Adjacency("E");
    index = std::make_unique<QueryIndex>(g, *query, AllParams(g, 1));
    weights = RandomWeights(g, 1000, 9999, rng);
    LocalSchemeOptions opts;
    opts.epsilon = 0.25;
    opts.key = {seed, seed + 1};
    opts.encoding = PairEncoding::kAntipodal;
    scheme = std::make_unique<LocalScheme>(
        LocalScheme::Plan(*index, opts).ValueOrDie());
  }
};

struct CellResult {
  std::string codec;
  std::string attack;
  size_t coalition = 0;
  uint64_t candidates = 0;
  std::vector<uint64_t> members;
  std::vector<double> member_scores;
  TraceResult trace;
  size_t traced_members = 0;
  size_t innocents = 0;
  size_t elements_erased = 0;
  size_t rows_inserted = 0;
  size_t positions_scored = 0;
  size_t channel_bits_erased = 0;
  double observe_ms = 0;
  double trace_ms = 0;
  uint64_t cell_seed = 0;
};

struct HonestResult {
  std::string codec;
  std::string suspect;
  TraceResult trace;
  double trace_ms = 0;
};

struct DeterminismCell {
  std::string codec;
  std::string attack;
  bool identical = true;
};

/// Spread coalition members deterministically over the candidate pool.
std::vector<uint64_t> CoalitionMembers(size_t c, uint64_t candidates) {
  std::vector<uint64_t> out;
  for (size_t k = 0; k < c; ++k) {
    out.push_back((static_cast<uint64_t>(k) + 1) * candidates /
                  (static_cast<uint64_t>(c) + 1));
  }
  return out;
}

size_t CountTraced(const TraceResult& r, const std::vector<uint64_t>& members,
                   size_t* innocents) {
  size_t traced = 0;
  *innocents = 0;
  for (const Accusation& a : r.accused) {
    bool member = false;
    for (uint64_t m : members) member |= (m == a.recipient);
    if (member) {
      ++traced;
    } else {
      ++*innocents;
    }
  }
  return traced;
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = 100000;
  size_t redundancy = 3;
  uint64_t candidates = 100000;
  size_t design_c = 5;
  uint64_t seed = 1;
  std::optional<std::string> json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json_path = "BENCH_trace.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--n" && i + 1 < argc) {
      n = std::stoul(argv[++i]);
    } else if (arg == "--candidates" && i + 1 < argc) {
      candidates = std::stoull(argv[++i]);
    } else if (arg == "--redundancy" && i + 1 < argc) {
      redundancy = std::stoul(argv[++i]);
    } else if (arg == "--design-c" && i + 1 < argc) {
      design_c = std::stoul(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::stoull(argv[++i]);
    } else {
      std::cerr << "usage: bench_trace [--json[=PATH]] [--n N] "
                   "[--candidates C] [--redundancy R] [--design-c C] "
                   "[--seed S]\n";
      return 2;
    }
  }

  std::cout << "=== bench_trace: Tardos fingerprint tracing campaign (n=" << n
            << ", candidates=" << candidates << ", design c=" << design_c
            << ") ===\n";

  SetParallelThreads(0);
  Workload wl(n, seed);
  AdversarialScheme adv(*wl.scheme, redundancy);
  if (adv.CapacityBits() == 0) {
    std::cerr << "FAIL: planned scheme has zero capacity\n";
    return 1;
  }

  // The unrelated honest suspect: same schema and domain, fresh weights.
  WeightMap unrelated = wl.weights;
  {
    Rng urng(seed + 17);
    unrelated.ForEach([&](const Tuple& t, Weight) {
      unrelated.Set(t, urng.Uniform(1000, 9999));
    });
  }

  // Light structural tier stacked on every collusion forge: independent
  // deletion plus spurious insertions, per-cell seeded.
  const double kDeletionFrac = 0.03;
  const double kInsertionFrac = 0.02;

  const std::vector<size_t> kCoalitions = {1, 2, design_c, design_c + 3};
  const std::vector<std::string> kCodecs = {"identity", "hamming"};

  std::vector<CellResult> grid;
  std::vector<HonestResult> honest;
  std::vector<DeterminismCell> determinism;
  bool thread_identical = true;
  bool internal_error = false;
  uint64_t tag = 0;

  for (const std::string& codec_spec : kCodecs) {
    auto codec = MakeCodec(codec_spec).ValueOrDie();
    CodedWatermark wm(adv, *codec);
    if (wm.PayloadBits() == 0) {
      std::cerr << "FAIL: zero payload bits for codec " << codec_spec << "\n";
      return 1;
    }
    TardosOptions topts;
    topts.design_c = design_c;
    topts.seed = seed + 1000;
    FingerprintedWatermark fp(wm, topts);

    // Honest cells: nobody gets accused, full candidate pool.
    for (const auto& [name, weights] :
         std::vector<std::pair<std::string, const WeightMap*>>{
             {"original", &wl.weights}, {"unrelated", &unrelated}}) {
      HonestServer server(*wl.index, *weights);
      FingerprintObservation obs;
      Result<FingerprintObservation> observed =
          fp.Observe(wl.weights, server);
      if (!observed.ok()) {
        std::cerr << "FAIL: honest observe: " << observed.status() << "\n";
        return 1;
      }
      obs = std::move(observed).value();
      HonestResult h;
      h.codec = codec_spec;
      h.suspect = name;
      h.trace_ms = TimeMs([&] { h.trace = fp.TraceMany(obs, candidates); });
      honest.push_back(std::move(h));
    }

    for (size_t c : kCoalitions) {
      // Headline rows (single leaker, design-size coalition) scan the full
      // pool; the flanking rows scan a tenth to keep the campaign fast.
      const uint64_t cell_candidates =
          (c == 1 || c == design_c) ? candidates : std::max<uint64_t>(candidates / 10, 1000);
      const std::vector<uint64_t> members = CoalitionMembers(c, cell_candidates);
      std::vector<WeightMap> copies;
      std::vector<const WeightMap*> copy_ptrs;
      for (uint64_t m : members) copies.push_back(fp.EmbedFor(wl.weights, m));
      for (const WeightMap& copy : copies) copy_ptrs.push_back(&copy);

      // A single leaker has nothing to collude with: one cell, no forge.
      const std::vector<std::string> attacks =
          c == 1 ? std::vector<std::string>{"none"} : KnownCollusionSpecs();
      for (const std::string& attack_spec : attacks) {
        CellResult cell;
        cell.codec = codec_spec;
        cell.attack = attack_spec;
        cell.coalition = c;
        cell.candidates = cell_candidates;
        cell.members = members;
        cell.cell_seed = seed + (++tag) * 1000003;

        WeightMap forged = copies[0];
        if (attack_spec != "none") {
          auto attack = MakeCollusionAttack(attack_spec).ValueOrDie();
          Rng arng(cell.cell_seed);
          Result<WeightMap> hybrid = attack->Forge(copy_ptrs, arng);
          if (!hybrid.ok()) {
            std::cerr << "FAIL: forge " << attack_spec << ": "
                      << hybrid.status() << "\n";
            return 1;
          }
          forged = std::move(hybrid).value();
        }

        ComposedAttackSpec aspec;
        aspec.deletion_frac = kDeletionFrac;
        aspec.insertion_frac = kInsertionFrac;
        aspec.seed = cell.cell_seed + 1;
        ComposedSuspect suspect = ApplyComposedAttack(
            *wl.index, wl.scheme->marking().pairs(), adv.Redundancy(), forged,
            aspec);
        cell.elements_erased = suspect.elements_erased;
        cell.rows_inserted = suspect.rows_inserted;

        FingerprintObservation obs;
        cell.observe_ms = TimeMs([&] {
          Result<FingerprintObservation> observed =
              fp.Observe(wl.weights, *suspect.server);
          if (!observed.ok()) {
            std::cerr << "FAIL: observe: " << observed.status() << "\n";
            internal_error = true;
            return;
          }
          obs = std::move(observed).value();
        });
        if (internal_error) return 1;
        cell.positions_scored = obs.positions_scored;
        cell.channel_bits_erased = obs.channel.message.bits_erased;
        cell.trace_ms =
            TimeMs([&] { cell.trace = fp.TraceMany(obs, cell_candidates); });
        cell.traced_members =
            CountTraced(cell.trace, members, &cell.innocents);
        for (uint64_t m : members) {
          cell.member_scores.push_back(fp.Score(obs, m));
        }

        // Thread-identity check on the headline coalition cells: the full
        // observe + trace pipeline re-run at 1, 4 and 8 threads must emit
        // byte-identical canonical output.
        if (c == design_c &&
            (attack_spec == "averaging" || attack_spec.rfind("interleave", 0) == 0)) {
          DeterminismCell d;
          d.codec = codec_spec;
          d.attack = attack_spec;
          std::string reference;
          for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
            SetParallelThreads(threads);
            FingerprintObservation tobs =
                fp.Observe(wl.weights, *suspect.server).ValueOrDie();
            const std::string canon =
                CanonicalTrace(fp.TraceMany(tobs, cell_candidates));
            if (reference.empty()) {
              reference = canon;
            } else if (canon != reference) {
              d.identical = false;
            }
          }
          SetParallelThreads(0);
          thread_identical &= d.identical;
          determinism.push_back(d);
        }

        grid.push_back(std::move(cell));
      }
    }
  }

  // --- Report ---------------------------------------------------------------
  TextTable table(StrCat("Tracing grid (fp budget 1e-6, ",
                         "structural tier: del ", FmtDouble(kDeletionFrac, 2),
                         " + ins ", FmtDouble(kInsertionFrac, 2), ")"));
  table.SetHeader({"codec", "c", "attack", "cands", "verdict", "traced",
                   "innocent", "threshold", "top score", "cand/s"});
  for (const CellResult& cell : grid) {
    const double top_score = cell.trace.top.empty() ? 0 : cell.trace.top[0].score;
    table.AddRow(
        {cell.codec, StrCat(cell.coalition), cell.attack,
         StrCat(cell.candidates), TraceVerdictKindName(cell.trace.kind),
         StrCat(cell.traced_members, "/", cell.coalition),
         StrCat(cell.innocents), FmtDouble(cell.trace.threshold, 1),
         FmtDouble(top_score, 1),
         FmtDouble(1000.0 * static_cast<double>(cell.candidates) /
                       std::max(cell.trace_ms, 1e-9), 0)});
  }
  table.Print(std::cout);

  for (const HonestResult& h : honest) {
    std::cout << "honest " << h.codec << "/" << h.suspect << ": "
              << TraceVerdictKindName(h.trace.kind) << ", "
              << h.trace.accused.size() << " accused\n";
  }
  for (const DeterminismCell& d : determinism) {
    std::cout << "thread-identity " << d.codec << "/" << d.attack
              << " @ {1,4,8}: " << (d.identical ? "identical" : "DIFFERS")
              << "\n";
  }

  // --- Acceptance -----------------------------------------------------------
  bool zero_innocents = true;
  bool headline_traced = true;
  for (const CellResult& cell : grid) {
    zero_innocents &= (cell.innocents == 0);
    if (cell.coalition <= design_c) {
      headline_traced &= (cell.traced_members >= 1 &&
                          cell.trace.kind == TraceVerdictKind::kTraced);
    }
  }
  for (const HonestResult& h : honest) {
    zero_innocents &= h.trace.accused.empty();
  }
  const bool pass = zero_innocents && headline_traced && thread_identical;
  std::cout << "acceptance: headline c<=" << design_c << " traced: "
            << (headline_traced ? "yes" : "NO")
            << "; zero innocents: " << (zero_innocents ? "yes" : "NO")
            << "; thread-identical: " << (thread_identical ? "yes" : "NO")
            << "\n";

  if (json_path) {
    JsonWriter w;
    w.BeginObject();
    w.Key("instance").BeginObject();
    w.Key("n").UInt(n);
    w.Key("redundancy").UInt(redundancy);
    w.Key("channel_bits").UInt(adv.CapacityBits());
    w.Key("seed").UInt(seed);
    w.EndObject();
    w.Key("code").BeginObject();
    w.Key("design_c").UInt(design_c);
    w.Key("fp_threshold").Double(1e-6);
    w.Key("candidates").UInt(candidates);
    w.EndObject();
    w.Key("structural_tier").BeginObject();
    w.Key("deletion_frac").Double(kDeletionFrac);
    w.Key("insertion_frac").Double(kInsertionFrac);
    w.EndObject();
    w.Key("hardware_threads").UInt(std::thread::hardware_concurrency());
    w.Key("grid").BeginArray();
    for (const CellResult& cell : grid) {
      w.BeginObject();
      w.Key("codec").String(cell.codec);
      w.Key("coalition").UInt(cell.coalition);
      w.Key("attack").String(cell.attack);
      w.Key("candidates").UInt(cell.candidates);
      w.Key("cell_seed").UInt(cell.cell_seed);
      w.Key("positions").UInt(cell.trace.candidates == 0
                                  ? 0
                                  : cell.positions_scored);
      w.Key("channel_bits_erased").UInt(cell.channel_bits_erased);
      w.Key("elements_erased").UInt(cell.elements_erased);
      w.Key("rows_inserted").UInt(cell.rows_inserted);
      w.Key("verdict").String(TraceVerdictKindName(cell.trace.kind));
      w.Key("threshold").Double(cell.trace.threshold);
      w.Key("max_achievable").Double(cell.trace.max_achievable);
      w.Key("traced_members").UInt(cell.traced_members);
      w.Key("innocents_accused").UInt(cell.innocents);
      w.Key("pruned").UInt(cell.trace.pruned);
      w.Key("accused").BeginArray();
      for (size_t i = 0; i < cell.trace.accused.size() && i < 10; ++i) {
        const Accusation& a = cell.trace.accused[i];
        w.BeginObject();
        w.Key("recipient").UInt(a.recipient);
        w.Key("score").Double(a.score);
        w.Key("log10_fp").Double(a.log10_fp);
        w.EndObject();
      }
      w.EndArray();
      w.Key("members").BeginArray();
      for (uint64_t m : cell.members) w.UInt(m);
      w.EndArray();
      w.Key("member_scores").BeginArray();
      for (double s : cell.member_scores) w.Double(s);
      w.EndArray();
      w.Key("observe_ms").Double(cell.observe_ms);
      w.Key("trace_ms").Double(cell.trace_ms);
      w.Key("candidates_per_sec")
          .Double(1000.0 * static_cast<double>(cell.candidates) /
                  std::max(cell.trace_ms, 1e-9));
      w.EndObject();
    }
    w.EndArray();
    w.Key("honest").BeginArray();
    for (const HonestResult& h : honest) {
      w.BeginObject();
      w.Key("codec").String(h.codec);
      w.Key("suspect").String(h.suspect);
      w.Key("verdict").String(TraceVerdictKindName(h.trace.kind));
      w.Key("accused").UInt(h.trace.accused.size());
      w.Key("trace_ms").Double(h.trace_ms);
      w.EndObject();
    }
    w.EndArray();
    w.Key("determinism").BeginObject();
    w.Key("threads").BeginArray();
    w.UInt(1).UInt(4).UInt(8);
    w.EndArray();
    w.Key("cells").BeginArray();
    for (const DeterminismCell& d : determinism) {
      w.BeginObject();
      w.Key("codec").String(d.codec);
      w.Key("attack").String(d.attack);
      w.Key("identical").Bool(d.identical);
      w.EndObject();
    }
    w.EndArray();
    w.Key("identical").Bool(thread_identical);
    w.EndObject();
    w.Key("acceptance").BeginObject();
    w.Key("headline_coalition").UInt(design_c);
    w.Key("headline_traced").Bool(headline_traced);
    w.Key("zero_innocents").Bool(zero_innocents);
    w.Key("thread_identical").Bool(thread_identical);
    w.Key("pass").Bool(pass);
    w.EndObject();
    w.EndObject();
    if (!UpdateBenchJsonSection(*json_path, "trace_campaign", w.str())) {
      std::cerr << "FAIL: cannot write " << *json_path << "\n";
      return 1;
    }
    std::cout << "wrote section \"trace_campaign\" to " << *json_path << "\n";
  }

  if (!pass) {
    std::cerr << "FAIL: tracing acceptance criteria not met\n";
    return 1;
  }
  return 0;
}
