# Empty compiler generated dependencies file for qpwm_structure.
# This may be replaced when dependencies are built.
