// Fixture: clean lifetime discipline — the stored view is annotated with
// QPWM_VIEW_OF(owner), returns are owning, and the returned lambda captures
// by value. Must pass `qpwm_lint --strict`. Never compiled, only linted.
#include <string_view>
#include <vector>

namespace fx {

class Snapshot {
 public:
  explicit Snapshot(std::vector<char> storage)
      : storage_(storage), text_(storage_.data(), storage_.size()) {}

 private:
  std::vector<char> storage_;
  std::string_view text_ QPWM_VIEW_OF(storage_);
};

std::vector<int> CopyOut() {
  std::vector<int> v;
  return v;  // by value: an owning return, not a view
}

auto MakeAdder(int base) {
  return [base](int x) { return base + x; };  // by-value capture
}

}  // namespace fx
