// Khanna-Zane transform (Fact 1): turning the non-adversarial schemes into
// adversarial ones. Each message bit is spread over a group of `redundancy`
// pairs with antipodal encoding; the detector takes a majority vote of the
// per-pair delta signs. Under the bounded-distortion and limited-knowledge
// assumptions an attacker flips few votes, so majorities survive; on an
// unrelated database the votes are coin flips, bounding false positives.
//
// The wrapper is scheme-agnostic: it drives any base scheme exposing mark
// application and per-pair delta reading (the local scheme of Theorem 3 and
// the tree scheme of Theorems 4/5 both do).
#ifndef QPWM_CORE_ADVERSARIAL_H_
#define QPWM_CORE_ADVERSARIAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "qpwm/core/local_scheme.h"
#include "qpwm/core/tree_scheme.h"
#include "qpwm/util/bitvec.h"
#include "qpwm/util/status.h"

namespace qpwm {

/// Detection output with per-bit confidence and erasure accounting.
///
/// Structural attacks (tuple deletion, dropped subtrees, shipped subsets)
/// remove pair elements from the suspect's answers. Such pairs are *erasures*:
/// they abstain from the vote and shrink the group, they are never fabricated
/// as 0-deltas. A bit whose entire group was erased is reported as erased
/// rather than guessed — detection returns this partial report instead of an
/// all-or-nothing kDetectionFailed.
struct AdversarialDetection {
  BitVec mark;
  /// Vote margin per bit: (votes for winner - votes against) / surviving
  /// group size, in [0, 1]. A margin of 0 means a tie (that bit is
  /// untrusted); erased bits report margin 0.
  std::vector<double> margins;
  /// Signed raw vote difference per bit (votes for 1 minus votes for 0) —
  /// the exact integer soft information behind `margins`, consumed by the
  /// coding layer's soft-decision decoders.
  std::vector<int32_t> vote_diffs;
  /// Pair votes actually cast per bit: surviving pairs minus delta-0
  /// abstentions. The coding layer's false-positive bound counts these as
  /// the coin flips of its null model.
  std::vector<uint32_t> votes_cast;
  /// Smallest margin over recovered bits — the detection confidence.
  /// 0 when every bit was erased.
  double min_margin = 0;
  /// Surviving (non-erased) pairs per bit group; at most Redundancy() each.
  std::vector<uint32_t> group_sizes;
  /// Per bit: true iff every pair in its group was erased (the mark bit is
  /// reported as 0 but carries no information).
  std::vector<bool> bit_erased;
  /// Pairs whose elements were missing from the suspect's answers.
  size_t pairs_erased = 0;
  /// Bits with at least one surviving vote / bits fully erased.
  size_t bits_recovered = 0;
  size_t bits_erased = 0;

  /// True iff every message bit still has at least one surviving vote.
  bool complete() const { return bits_erased == 0; }
};

/// Opaque per-run detection state: built once per Detect/DetectMany run and
/// shared read-only across every suspect (e.g. the hoisted dense view of the
/// owner's original weights, which used to be rebuilt per suspect).
class DetectRunContext {
 public:
  virtual ~DetectRunContext() = default;
};

/// What the wrapper needs from a base scheme: how many mark-carrying pairs
/// it has, how to write a full-width mark, and how to read the pair
/// observations back through a suspect server (erasure-aware). Observe fills
/// and returns scratch.observations, so a pooled scratch makes multi-suspect
/// fan-out allocation-free in steady state.
class PairCarrier {
 public:
  virtual ~PairCarrier() = default;
  virtual size_t NumPairs() const = 0;
  virtual void Apply(const BitVec& expanded_mark, WeightMap& weights,
                     PairEncoding encoding) const = 0;
  virtual std::unique_ptr<DetectRunContext> MakeRunContext(
      const WeightMap& original, const DetectOptions& options) const = 0;
  virtual const std::vector<PairObservation>& Observe(
      const DetectRunContext& ctx, const AnswerServer& suspect,
      DetectScratch& scratch) const = 0;
};

/// Adversarial wrapper around a planned base scheme.
class AdversarialScheme {
 public:
  /// `redundancy` pairs per message bit (odd values avoid ties). The base
  /// scheme must outlive the wrapper.
  AdversarialScheme(const LocalScheme& base, size_t redundancy);
  AdversarialScheme(const TreeScheme& base, size_t redundancy);

  /// Message capacity: floor(base pairs / redundancy).
  size_t CapacityBits() const { return capacity_; }
  size_t Redundancy() const { return redundancy_; }

  /// Embeds an l-bit message (l = CapacityBits()) by repeating each bit over
  /// its pair group with antipodal encoding.
  WeightMap Embed(const WeightMap& original, const BitVec& message) const;

  /// Majority decoding from suspect answers. `options` selects the serving
  /// fast paths (batched witness answers, dense weight views); the detection
  /// output is bit-identical for every setting.
  [[nodiscard]] Result<AdversarialDetection> Detect(const WeightMap& original,
                                      const AnswerServer& suspect,
                                      const DetectOptions& options = {}) const;

  /// Detects against many suspect copies at once — Remark 2's fingerprint
  /// tracing, where a leak is matched against up to 2^l distinct marked
  /// copies. Suspects are spread across the thread pool (QPWM_THREADS);
  /// results are index-aligned with `suspects` and bit-identical to calling
  /// Detect on each suspect serially, for any thread count. Null suspects
  /// are rejected by QPWM_CHECK; detection itself never fails (partial
  /// reports, not errors), so the results are returned by value.
  std::vector<AdversarialDetection> DetectMany(
      const WeightMap& original, const std::vector<const AnswerServer*>& suspects,
      const DetectOptions& options = {}) const;

 private:
  explicit AdversarialScheme(std::unique_ptr<PairCarrier> carrier, size_t redundancy);

  /// Majority decoding of one suspect's pair observations into a detection
  /// report — the pure (allocating only its output) tail of Detect.
  AdversarialDetection DecodeVotes(
      const std::vector<PairObservation>& observations) const;

  std::unique_ptr<PairCarrier> carrier_;
  size_t redundancy_;
  size_t capacity_;
};

}  // namespace qpwm

#endif  // QPWM_CORE_ADVERSARIAL_H_
