#include <gtest/gtest.h>

#include "qpwm/core/answers.h"
#include "qpwm/core/attack.h"
#include "qpwm/core/distortion.h"
#include "qpwm/core/pairs.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

// Fixture over the paper's Figure 1 instance with psi(u, v) = R(u, v).
class Figure1Test : public ::testing::Test {
 protected:
  Figure1Test()
      : g_(Figure1Instance()),
        query_(AtomQuery::Adjacency("R")),
        index_(g_, *query_, AllParams(g_, 1)),
        weights_(1, g_.universe_size()) {
    for (ElemId e = 0; e < 6; ++e) weights_.SetElem(e, 100 + e);
  }

  Structure g_;
  std::unique_ptr<AtomQuery> query_;
  QueryIndex index_;
  WeightMap weights_;
};

TEST_F(Figure1Test, ActiveElements) {
  // W = union W_a = {d, e, a, b}; c and f are inactive.
  EXPECT_EQ(index_.num_active(), 4u);
  EXPECT_TRUE(index_.FindActive(Tuple{3}).ok());   // d
  EXPECT_TRUE(index_.FindActive(Tuple{4}).ok());   // e
  EXPECT_TRUE(index_.FindActive(Tuple{0}).ok());   // a
  EXPECT_TRUE(index_.FindActive(Tuple{1}).ok());   // b
  EXPECT_FALSE(index_.FindActive(Tuple{2}).ok());  // c
  EXPECT_FALSE(index_.FindActive(Tuple{5}).ok());  // f
}

TEST_F(Figure1Test, ResultSets) {
  size_t a_param = index_.FindParam(Tuple{0}).ValueOrDie();
  EXPECT_EQ(index_.ResultFor(a_param).size(), 2u);  // W_a = {d, e}
  size_t c_param = index_.FindParam(Tuple{2}).ValueOrDie();
  EXPECT_EQ(index_.ResultFor(c_param).size(), 1u);  // W_c = {d}
}

TEST_F(Figure1Test, InverseIndex) {
  size_t d_active = index_.FindActive(Tuple{3}).ValueOrDie();
  // d appears in W_a, W_b, W_c: three parameters.
  EXPECT_EQ(index_.ParamsContaining(d_active).size(), 3u);
}

TEST_F(Figure1Test, SumWeightsComputesF) {
  size_t a_param = index_.FindParam(Tuple{0}).ValueOrDie();
  // f(a) = W(d) + W(e) = 103 + 104.
  EXPECT_EQ(index_.SumWeights(a_param, weights_), 207);
}

TEST_F(Figure1Test, AnswersCarryWeights) {
  size_t c_param = index_.FindParam(Tuple{2}).ValueOrDie();
  AnswerSet answers = index_.AnswersFor(c_param, weights_);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0].element, Tuple{3});
  EXPECT_EQ(answers[0].weight, 103);
}

TEST_F(Figure1Test, HonestServerServesWeights) {
  HonestServer server(index_, weights_);
  AnswerSet answers = server.Answer(Tuple{0});
  EXPECT_EQ(answers.size(), 2u);
}

TEST_F(Figure1Test, NaivePairLeaksOnCAndF) {
  // Figure 3: the (d: +1, e: -1) marking is neutral on a, b but leaks on
  // c (+1) and f (-1).
  size_t d_active = index_.FindActive(Tuple{3}).ValueOrDie();
  size_t e_active = index_.FindActive(Tuple{4}).ValueOrDie();
  PairMarking marking(index_, {{static_cast<uint32_t>(d_active),
                                static_cast<uint32_t>(e_active)}});

  WeightMap marked = weights_;
  BitVec one(1);
  one.Set(0, true);
  marking.Apply(one, marked);

  auto drift = PerParamDistortion(index_, weights_, marked);
  EXPECT_EQ(drift[0], 0);  // a
  EXPECT_EQ(drift[1], 0);  // b
  EXPECT_EQ(drift[2], 1);  // c: +1 leak
  EXPECT_EQ(drift[5], 1);  // f: -1 leak
  EXPECT_EQ(GlobalDistortion(index_, weights_, marked), 1);
  EXPECT_TRUE(SatisfiesLocalDistortion(weights_, marked, 1));
}

TEST_F(Figure1Test, CostPerParamBoundsEveryMark) {
  size_t d = index_.FindActive(Tuple{3}).ValueOrDie();
  size_t e = index_.FindActive(Tuple{4}).ValueOrDie();
  size_t a = index_.FindActive(Tuple{0}).ValueOrDie();
  size_t b = index_.FindActive(Tuple{1}).ValueOrDie();
  PairMarking marking(index_,
                      {{static_cast<uint32_t>(d), static_cast<uint32_t>(e)},
                       {static_cast<uint32_t>(a), static_cast<uint32_t>(b)}});
  auto cost = marking.CostPerParam();
  // Exhaustively check all 4 marks against the cost bound.
  for (uint64_t m = 0; m < 4; ++m) {
    WeightMap marked = weights_;
    marking.Apply(BitVec::FromUint64(m, 2), marked);
    auto drift = PerParamDistortion(index_, weights_, marked);
    for (size_t p = 0; p < drift.size(); ++p) {
      EXPECT_LE(drift[p], static_cast<Weight>(cost[p])) << "mark " << m;
    }
  }
  EXPECT_EQ(marking.MaxCost(), 1u);
}

TEST_F(Figure1Test, AntipodalEncodingAlsoBounded) {
  size_t d = index_.FindActive(Tuple{3}).ValueOrDie();
  size_t e = index_.FindActive(Tuple{4}).ValueOrDie();
  PairMarking marking(index_, {{static_cast<uint32_t>(d), static_cast<uint32_t>(e)}});
  WeightMap zero_mark = weights_;
  marking.Apply(BitVec(1), zero_mark, PairEncoding::kAntipodal);
  // Bit 0 antipodal writes (-1, +1): still 1-local, still cost-bounded.
  EXPECT_TRUE(SatisfiesLocalDistortion(weights_, zero_mark, 1));
  EXPECT_LE(GlobalDistortion(index_, weights_, zero_mark), 1);
}

TEST_F(Figure1Test, SubsetSelectsPairs) {
  size_t d = index_.FindActive(Tuple{3}).ValueOrDie();
  size_t e = index_.FindActive(Tuple{4}).ValueOrDie();
  size_t a = index_.FindActive(Tuple{0}).ValueOrDie();
  size_t b = index_.FindActive(Tuple{1}).ValueOrDie();
  PairMarking all(index_, {{static_cast<uint32_t>(d), static_cast<uint32_t>(e)},
                           {static_cast<uint32_t>(a), static_cast<uint32_t>(b)}});
  PairMarking sub = all.Subset({1});
  EXPECT_EQ(sub.size(), 1u);
  EXPECT_EQ(sub.pairs()[0].plus, static_cast<uint32_t>(a));
}

// --- Aggregates --------------------------------------------------------------

TEST_F(Figure1Test, AggregateVariants) {
  size_t a_param = index_.FindParam(Tuple{0}).ValueOrDie();
  EXPECT_EQ(AggregateWeight(index_, a_param, weights_, Aggregate::kSum), 207);
  EXPECT_EQ(AggregateWeight(index_, a_param, weights_, Aggregate::kMean), 103);
  EXPECT_EQ(AggregateWeight(index_, a_param, weights_, Aggregate::kMin), 103);
  EXPECT_EQ(AggregateWeight(index_, a_param, weights_, Aggregate::kMax), 104);
}

TEST_F(Figure1Test, EmptyResultAggregatesToZero) {
  // d's result set is {a}; use an isolated new structure param with empty
  // results: parameter c has W_c = {d}, but parameter d -> {a}. Element 2
  // (c) has nonempty; check an actually-empty one: none here, so craft one.
  Structure iso(GraphSignature(), 2);
  iso.Seal();
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(iso, *query, AllParams(iso, 1));
  WeightMap w(1, 2);
  EXPECT_EQ(AggregateWeight(index, 0, w, Aggregate::kSum), 0);
  EXPECT_EQ(AggregateWeight(index, 0, w, Aggregate::kMin), 0);
}

// --- Attacks -----------------------------------------------------------------

TEST(AttackTest, UniformNoiseIsLocal) {
  Rng rng(3);
  WeightMap w(1, 50);
  for (ElemId e = 0; e < 50; ++e) w.SetElem(e, 100);
  WeightMap attacked = UniformNoiseAttack(w, 2, rng);
  EXPECT_LE(w.LocalDistortion(attacked), 2);
}

TEST(AttackTest, JitterFlipsSomeWeights) {
  Rng rng(4);
  WeightMap w(1, 200);
  WeightMap attacked = JitterAttack(w, 0.5, rng);
  EXPECT_LE(w.LocalDistortion(attacked), 1);
  size_t changed = 0;
  for (ElemId e = 0; e < 200; ++e) changed += attacked.GetElem(e) != 0;
  EXPECT_GT(changed, 50u);
  EXPECT_LT(changed, 150u);
}

TEST(AttackTest, RoundingSnapsToGranularity) {
  WeightMap w(1, 5);
  w.SetElem(0, 101);
  w.SetElem(1, 104);
  w.SetElem(2, -3);
  w.SetElem(3, 0);
  w.SetElem(4, 7);
  WeightMap attacked = RoundingAttack(w, 5);
  EXPECT_EQ(attacked.GetElem(0), 100);
  EXPECT_EQ(attacked.GetElem(1), 105);
  EXPECT_EQ(attacked.GetElem(2), -5);
  EXPECT_EQ(attacked.GetElem(3), 0);
  EXPECT_EQ(attacked.GetElem(4), 5);
}

TEST(AttackTest, GuessingAttackTouchesActiveElements) {
  Structure g = Figure1Instance();
  auto query = AtomQuery::Adjacency("R");
  QueryIndex index(g, *query, AllParams(g, 1));
  WeightMap w(1, 6);
  Rng rng(5);
  WeightMap attacked = GuessingPairAttack(w, index, 10, rng);
  // Inactive elements (c = 2, f = 5) are never touched.
  EXPECT_EQ(attacked.GetElem(2), 0);
  EXPECT_EQ(attacked.GetElem(5), 0);
}

}  // namespace
}  // namespace qpwm
