// Query answer machinery: the sets W_a = psi(a, G) of weighted elements a
// query touches, the active set W = union_a W_a, the answer sets
// A_a = {(b, W(b)) : b in W_a} a server returns, and the AnswerServer
// interface that models the paper's indirect-access threat model (the
// detector may only see answers, never the suspect's weight table).
#ifndef QPWM_CORE_ANSWERS_H_
#define QPWM_CORE_ANSWERS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "qpwm/logic/query.h"
#include "qpwm/structure/structure.h"
#include "qpwm/structure/weighted.h"
#include "qpwm/util/status.h"
#include "qpwm/util/thread_annotations.h"

namespace qpwm {

/// One answer row: a result tuple and its weight.
struct AnswerRow {
  Tuple element;
  Weight weight;
};

/// A_a for one parameter.
using AnswerSet = std::vector<AnswerRow>;

/// Columnar batch of answer sets: one flat element array, one weight per
/// row, row extents per parameter. Detection reads millions of answer rows
/// per run; the AnswerSet shape pays one heap tuple per row, while this
/// batch is three contiguous arrays that a reusable instance amortizes to
/// zero steady-state allocation. Row r of parameter p spans
/// elems[elem_offsets[r], elem_offsets[r+1]) for r in
/// [param_offsets[p], param_offsets[p+1]).
struct FlatAnswerBatch {
  std::vector<ElemId> elems;
  std::vector<uint32_t> elem_offsets{0};
  std::vector<Weight> weights;
  std::vector<uint32_t> param_offsets{0};

  size_t num_rows() const { return weights.size(); }
  size_t num_params() const { return param_offsets.size() - 1; }

  void Clear() {
    elems.clear();
    elem_offsets.assign(1, 0);
    weights.clear();
    param_offsets.assign(1, 0);
  }
  void AppendRow(const Tuple& element, Weight w) {
    elems.insert(elems.end(), element.begin(), element.end());
    elem_offsets.push_back(static_cast<uint32_t>(elems.size()));
    weights.push_back(w);
  }
  /// Closes the current parameter's row range.
  void FinishParam() {
    param_offsets.push_back(static_cast<uint32_t>(num_rows()));
  }
};

/// Detection fast-path knobs. Both default on; detection output (marks,
/// margins, erasure counts) is bit-identical for every combination — the
/// switches exist as measured ablations (bench_detect) and to reproduce the
/// pre-optimization serving path as a baseline.
struct DetectOptions {
  /// Answer each distinct witness parameter once per detection run and share
  /// the answer across every pair that reads through it (one AnswerAll
  /// round-trip instead of two Answer() calls per pair).
  bool batch_answers = true;
  /// Snapshot the owner's weights into a DenseWeightView aligned with the
  /// QueryIndex active ids (O(1) indexed reads instead of per-tuple
  /// WeightMap lookups).
  bool dense_views = true;
};

/// Precomputed query results over a parameter domain.
///
/// Active elements (the paper's W) are interned to dense indices; per-param
/// results and the inverse map (which params contain a given active element)
/// are both kept, since the schemes need both directions.
class QueryIndex {
 public:
  // qpwm-lint: allow(legacy-tuple-vector) — sink parameter; the index owns its query-parameter domain
  QueryIndex(const Structure& g, const ParametricQuery& query, std::vector<Tuple> domain);

  const Structure& structure() const { return *g_; }
  const ParametricQuery& query() const { return *query_; }

  size_t num_params() const { return domain_.size(); }
  const Tuple& param(size_t i) const { return domain_[i]; }
  const std::vector<Tuple>& domain() const { return domain_; }

  /// Index of a parameter tuple in the domain.
  [[nodiscard]] Result<size_t> FindParam(const Tuple& params) const;

  /// |W|: number of distinct active weighted elements.
  size_t num_active() const { return active_.size(); }
  const Tuple& active_element(size_t w) const { return active_[w]; }

  /// Dense index of an s-tuple among the active elements.
  [[nodiscard]] Result<size_t> FindActive(const Tuple& t) const;

  /// Result-arity-1 fast path: active id of element `e`, or -1 when `e` is
  /// inactive or out of the universe. Only available when the query's result
  /// arity is 1 (see has_unary_actives()); batched detection uses it to map
  /// answer rows back to active ids with one array read instead of a tuple
  /// hash.
  int32_t ActiveIdOfElem(ElemId e) const {
    if (e >= active_of_elem_.size()) return -1;
    return active_of_elem_[e];
  }
  bool has_unary_actives() const { return !active_of_elem_.empty(); }

  /// W_a as sorted active-element indices.
  const std::vector<uint32_t>& ResultFor(size_t param_idx) const {
    return results_[param_idx];
  }

  /// Parameters whose result set contains active element `w`.
  const std::vector<uint32_t>& ParamsContaining(size_t w) const {
    return containing_[w];
  }

  /// Membership test (binary search over the sorted result list).
  bool Contains(size_t param_idx, size_t w) const;

  /// f(a) = sum of weights over W_a under `weights`.
  Weight SumWeights(size_t param_idx, const WeightMap& weights) const;

  /// A_a under `weights`.
  AnswerSet AnswersFor(size_t param_idx, const WeightMap& weights) const;

  /// Dense-view fast paths: identical results, O(1) weight reads.
  Weight SumWeights(size_t param_idx, const class DenseWeightView& view) const;
  AnswerSet AnswersFor(size_t param_idx, const class DenseWeightView& view) const;

  /// Appends A_a rows for one parameter into a flat batch — same rows in the
  /// same order as AnswersFor, no per-row allocation. The caller closes the
  /// parameter with out.FinishParam().
  void AppendAnswersFlat(size_t param_idx, const WeightMap& weights,
                         FlatAnswerBatch& out) const;
  void AppendAnswersFlat(size_t param_idx, const class DenseWeightView& view,
                         FlatAnswerBatch& out) const;

 private:
  const Structure* g_;
  const ParametricQuery* query_;
  // qpwm-lint: allow(legacy-tuple-vector) — owned query-parameter domain, not relation rows
  std::vector<Tuple> domain_;
  std::unordered_map<Tuple, uint32_t, TupleHash> param_index_;
  // qpwm-lint: allow(legacy-tuple-vector) — active parameter subset; param tuples, not relation rows
  std::vector<Tuple> active_;
  std::unordered_map<Tuple, uint32_t, TupleHash> active_index_;
  std::vector<int32_t> active_of_elem_;  // result arity 1 only; -1 = inactive
  std::vector<std::vector<uint32_t>> results_;     // param -> active indices (sorted)
  std::vector<std::vector<uint32_t>> containing_;  // active -> params (sorted)
};

/// Flat snapshot of a WeightMap over a QueryIndex's active elements: slot w
/// holds the weight of active_element(w). Detection reads the same few
/// thousand weights over and over; the view turns every read into an O(1)
/// vector index instead of a per-tuple hash lookup. Tuples outside the index
/// (inserted rows, out-of-domain parameters) stay on the sparse WeightMap
/// path — the view only ever covers the active set.
class DenseWeightView {
 public:
  DenseWeightView(const QueryIndex& index, const WeightMap& weights);

  /// Weight of active element `w` (a QueryIndex active id).
  Weight at(size_t w) const { return dense_[w]; }
  size_t size() const { return dense_.size(); }

 private:
  std::vector<Weight> dense_;
};

/// A suspect data server: answers parametric queries, nothing else.
class AnswerServer {
 public:
  virtual ~AnswerServer() = default;
  /// Returns A_a for parameter tuple `params`.
  virtual AnswerSet Answer(const Tuple& params) const = 0;
};

/// A server that can answer many parameters in one round trip. Detection
/// batches all distinct witness parameters of a run into a single call, so
/// servers that can amortize work across parameters (or a remote server that
/// would otherwise pay one network round trip per Answer) get to.
class BatchAnswerServer : public AnswerServer {
 public:
  /// Returns {Answer(params[0]), ..., Answer(params[n-1])}. The default
  /// loops over Answer(); overrides must return the exact same answers.
  virtual std::vector<AnswerSet> AnswerBatch(const std::vector<Tuple>& params) const;

  /// Columnar AnswerBatch: same rows in the same order, written into a
  /// caller-owned (reusable) batch. The default converts AnswerBatch();
  /// servers with flat internals (HonestServer, ServingSnapshot) override to
  /// skip the per-row AnswerSet materialization entirely.
  virtual void AnswerAllFlat(const std::vector<Tuple>& params,
                             FlatAnswerBatch& out) const;
};

/// Answers every parameter through the batch interface when the server
/// implements it, else one Answer() call per parameter. Result order matches
/// `params` either way.
std::vector<AnswerSet> AnswerAll(const AnswerServer& server,
                                 const std::vector<Tuple>& params);

/// Columnar AnswerAll: fills `out` with the exact rows AnswerAll would
/// return, through the server's flat override when it has one.
void AnswerAllFlat(const AnswerServer& server, const std::vector<Tuple>& params,
                   FlatAnswerBatch& out);

/// An epoch-stamped immutable serving snapshot: owns a copy of the weights
/// plus a dense view over them, so a detect pass reads a consistent state no
/// matter how the live server mutates underneath. Snapshots are shared
/// (shared_ptr) between the writer and any in-flight detect passes; when the
/// writer publishes a newer epoch it calls Retire() on the old one, which
/// flips a flag readers poll to notice they lost their epoch. Retiring never
/// invalidates the data — a reader holding the shared_ptr may finish its
/// pass against retired weights if it chooses to.
class ServingSnapshot : public BatchAnswerServer {
 public:
  ServingSnapshot(const QueryIndex& index, const WeightMap& weights,
                  uint64_t epoch)
      : index_(&index), weights_(weights), view_(index, weights_),
        epoch_(epoch) {}

  AnswerSet Answer(const Tuple& params) const override;
  void AnswerAllFlat(const std::vector<Tuple>& params,
                     FlatAnswerBatch& out) const override;

  /// The server version this snapshot was taken at.
  uint64_t epoch() const { return epoch_; }
  /// Marks the snapshot superseded. Const and thread-safe: the writer
  /// retires through the same shared_ptr<const ServingSnapshot> readers hold.
  void Retire() const { retired_.store(true, std::memory_order_release); }
  bool retired() const { return retired_.load(std::memory_order_acquire); }

  const QueryIndex& index() const { return *index_; }
  const WeightMap& weights() const { return weights_; }
  const DenseWeightView& view() const { return view_; }

 private:
  const QueryIndex* index_;
  WeightMap weights_;
  DenseWeightView view_ QPWM_VIEW_OF(weights_);
  uint64_t epoch_;
  mutable std::atomic<bool> retired_{false};
};

/// A server honestly serving a (possibly watermarked / attacked) weight map
/// over the owner's structure.
class HonestServer : public BatchAnswerServer {
 public:
  /// `use_dense_view` snapshots the weights into a DenseWeightView so
  /// in-domain answers are served with O(1) weight reads; pass false to get
  /// the pre-optimization sparse serving path (the bench ablation).
  HonestServer(const QueryIndex& index, WeightMap weights,
               bool use_dense_view = true)
      : index_(&index), weights_(std::move(weights)) {
    if (use_dense_view) view_.emplace(index, weights_);
  }

  AnswerSet Answer(const Tuple& params) const override;
  void AnswerAllFlat(const std::vector<Tuple>& params,
                     FlatAnswerBatch& out) const override;

  const WeightMap& weights() const { return weights_; }
  /// Mutable access invalidates the dense view (the snapshot would go stale)
  /// and bumps the version: any epoch snapshot taken earlier is now behind
  /// the live state. Call RefreshView() after mutating to restore the fast
  /// path.
  WeightMap& mutable_weights() {
    view_.reset();
    ++version_;
    return weights_;
  }
  /// Rebuilds the dense snapshot from the current weights.
  void RefreshView() { view_.emplace(*index_, weights_); }
  bool has_dense_view() const { return view_.has_value(); }

  /// Monotone mutation counter; starts at 0 and bumps on every
  /// mutable_weights() call.
  uint64_t version() const { return version_; }

  /// Freezes the current weights into an epoch snapshot stamped with the
  /// current version. The caller owns the lifetime; the server keeps no
  /// reference, so later mutations never race the snapshot.
  std::shared_ptr<const ServingSnapshot> MakeSnapshot() const {
    return std::make_shared<const ServingSnapshot>(*index_, weights_, version_);
  }

 private:
  const QueryIndex* index_;
  WeightMap weights_;
  std::optional<DenseWeightView> view_;
  uint64_t version_ = 0;
};

}  // namespace qpwm

#endif  // QPWM_CORE_ANSWERS_H_
