// Pair markings (Section 3): the (+1, -1) trick. A pair of active weighted
// elements carries one mark bit; its contribution to a parameter a is
// [b in W_a] - [b' in W_a], in {-1, 0, +1}, and is 0 exactly when the pair
// cancels on that query. The per-parameter *cost* sums |contribution| over
// pairs — an upper bound on the distortion of every possible mark, which is
// what the epsilon-goodness check verifies (a deterministic strengthening of
// Proposition 2, see DESIGN.md).
#ifndef QPWM_CORE_PAIRS_H_
#define QPWM_CORE_PAIRS_H_

#include <cstdint>
#include <vector>

#include "qpwm/core/answers.h"
#include "qpwm/structure/weighted.h"
#include "qpwm/util/bitvec.h"

namespace qpwm {

/// One mark-carrying pair: indices into the QueryIndex active-element table.
struct WeightPair {
  uint32_t plus;   // receives +1 when the bit is set
  uint32_t minus;  // receives -1 when the bit is set
};

/// One pair's reading through the suspect server. A pair whose elements no
/// longer appear in the suspect's answers (deleted tuple, dropped subtree,
/// shipped subset) is an *erasure*: the detector must abstain on it rather
/// than fabricate a 0-delta vote.
struct PairObservation {
  Weight delta = 0;     // (w*+ - w+) - (w*- - w-); meaningless when erased
  bool erased = false;  // element(s) missing from the suspect's answers
};

/// Reusable per-worker buffers for erasure-aware pair reading (the schemes'
/// ObservePairsInto paths). One instance per worker — see util/parallel.h
/// ScratchPool — makes a steady-state detection pass allocation-free: the
/// flat answer batch, the stamp/staging tables and the observation list all
/// keep their capacity across suspects.
///
/// `epoch` strictly increases for the lifetime of the scratch and is never
/// reset, so a stamp written while reading one suspect can never alias a
/// staging pass over a later suspect.
struct DetectScratch {
  FlatAnswerBatch answers;
  std::vector<uint64_t> stamp;       // per active/node id: epoch last staged
  std::vector<Weight> row_weight;    // staged weight, valid iff stamp matches
  std::vector<Weight> read_weight;   // per read slot (2 per pair)
  std::vector<char> read_found;
  Tuple row_tuple;                   // reused key for non-unary active lookup
  std::vector<PairObservation> observations;
  uint64_t epoch = 0;
};

/// How a set bit is written into a pair's weights.
enum class PairEncoding {
  /// bit 1 -> (+1, -1); bit 0 -> no change (the paper's encoding).
  kOnOff,
  /// bit 1 -> (+1, -1); bit 0 -> (-1, +1). Antipodal; doubles the detection
  /// margin, used under the Khanna-Zane adversarial transform.
  kAntipodal,
};

/// A fixed sequence of pairs over one QueryIndex, with contribution and cost
/// accounting.
class PairMarking {
 public:
  PairMarking(const QueryIndex& index, std::vector<WeightPair> pairs);

  const QueryIndex& index() const { return *index_; }
  const std::vector<WeightPair>& pairs() const { return pairs_; }
  size_t size() const { return pairs_.size(); }

  /// Contribution of pair `i` to parameter `a`: [b in W_a] - [b' in W_a].
  int Contribution(size_t pair_idx, size_t param_idx) const;

  /// cost(a) = sum_i |contribution_i(a)| — the worst-case |f drift| of any
  /// mark at parameter a (for either encoding).
  std::vector<uint32_t> CostPerParam() const;

  /// max_a cost(a). A pair set is epsilon-good iff MaxCost() <= ceil(1/eps).
  uint32_t MaxCost() const;

  /// Writes `mark` (one bit per pair) into `weights` in place.
  void Apply(const BitVec& mark, WeightMap& weights,
             PairEncoding encoding = PairEncoding::kOnOff) const;

  /// Restriction to a subset of the pairs (selection indices, kept in order).
  PairMarking Subset(const std::vector<uint32_t>& selection) const;

 private:
  const QueryIndex* index_;
  std::vector<WeightPair> pairs_;
};

}  // namespace qpwm

#endif  // QPWM_CORE_PAIRS_H_
