# Empty compiler generated dependencies file for tree_scheme_test.
# This may be replaced when dependencies are built.
