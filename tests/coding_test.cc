// Unit tests for the message codecs, the interleaver, and the verdict bound.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "qpwm/coding/codec.h"
#include "qpwm/coding/interleaver.h"
#include "qpwm/coding/verdict.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

// Clean soft word for a codeword: full-confidence symbols.
std::vector<SoftBit> CleanWord(const BitVec& code) {
  std::vector<SoftBit> soft(code.size());
  for (size_t i = 0; i < code.size(); ++i) {
    soft[i].value = code.Get(i) ? 1.0 : -1.0;
  }
  return soft;
}

BitVec RandomPayload(size_t bits, uint64_t seed) {
  Rng rng(seed);
  BitVec payload(bits);
  for (size_t i = 0; i < bits; ++i) payload.Set(i, rng.Coin());
  return payload;
}

// Every codec must round-trip a clean channel exactly, with no corrections.
TEST(CodecTest, CleanRoundTripAllCodecs) {
  for (const char* spec : {"identity", "repetition:3", "repetition:5",
                           "hamming", "rm:2", "rm:3", "rm:4", "rm:5"}) {
    auto codec = MakeCodec(spec).ValueOrDie();
    const size_t blocks = 3;
    BitVec payload =
        RandomPayload(blocks * codec->PayloadPerBlock(), 7);
    BitVec code = codec->Encode(payload);
    EXPECT_EQ(code.size(), blocks * codec->BlockLength()) << spec;
    DecodedMessage d = codec->Decode(CleanWord(code));
    EXPECT_EQ(d.payload, payload) << spec;
    EXPECT_TRUE(d.complete()) << spec;
    EXPECT_EQ(d.corrected, 0u) << spec;
    EXPECT_EQ(d.filled, 0u) << spec;
    EXPECT_EQ(d.bits_recovered, payload.size()) << spec;
    for (double c : d.confidences) EXPECT_GT(c, 0.0) << spec;
  }
}

TEST(CodecTest, MinDistances) {
  EXPECT_EQ(MakeCodec("identity").ValueOrDie()->MinDistance(), 1u);
  EXPECT_EQ(MakeCodec("repetition:3").ValueOrDie()->MinDistance(), 3u);
  EXPECT_EQ(MakeCodec("hamming").ValueOrDie()->MinDistance(), 3u);
  EXPECT_EQ(MakeCodec("rm:4").ValueOrDie()->MinDistance(), 8u);
  EXPECT_EQ(MakeCodec("rm:4").ValueOrDie()->BlockLength(), 16u);
  EXPECT_EQ(MakeCodec("rm:4").ValueOrDie()->PayloadPerBlock(), 5u);
}

TEST(CodecTest, HammingCorrectsOneErrorPerBlock) {
  auto codec = MakeCodec("hamming").ValueOrDie();
  BitVec payload = RandomPayload(4, 11);
  BitVec code = codec->Encode(payload);
  for (size_t flip = 0; flip < 7; ++flip) {
    std::vector<SoftBit> soft = CleanWord(code);
    soft[flip].value = -soft[flip].value;
    DecodedMessage d = codec->Decode(soft);
    EXPECT_EQ(d.payload, payload) << "flipped position " << flip;
    EXPECT_EQ(d.corrected, 1u);
  }
}

TEST(CodecTest, HammingFillsTwoErasuresPerBlock) {
  auto codec = MakeCodec("hamming").ValueOrDie();
  BitVec payload = RandomPayload(4, 13);
  BitVec code = codec->Encode(payload);
  for (size_t a = 0; a < 7; ++a) {
    for (size_t b = a + 1; b < 7; ++b) {
      std::vector<SoftBit> soft = CleanWord(code);
      soft[a].erased = true;
      soft[b].erased = true;
      DecodedMessage d = codec->Decode(soft);
      EXPECT_EQ(d.payload, payload) << "erased " << a << "," << b;
      EXPECT_TRUE(d.complete());
      EXPECT_EQ(d.filled, 2u);
    }
  }
}

TEST(CodecTest, ReedMullerCorrectsThreeErrorsAndSevenErasures) {
  auto codec = MakeCodec("rm:4").ValueOrDie();  // (16, 5, 8)
  BitVec payload = RandomPayload(5, 17);
  BitVec code = codec->Encode(payload);

  // 3 errors < d/2 = 4: always corrected.
  std::vector<SoftBit> soft = CleanWord(code);
  for (size_t i : {1u, 6u, 12u}) soft[i].value = -soft[i].value;
  DecodedMessage d = codec->Decode(soft);
  EXPECT_EQ(d.payload, payload);
  EXPECT_EQ(d.corrected, 3u);

  // 7 erasures = d - 1: always filled.
  soft = CleanWord(code);
  for (size_t i = 0; i < 7; ++i) soft[2 * i].erased = true;
  d = codec->Decode(soft);
  EXPECT_EQ(d.payload, payload);
  EXPECT_TRUE(d.complete());
  EXPECT_EQ(d.filled, 7u);
}

TEST(CodecTest, SoftDecisionOutweighsLowConfidenceFlips) {
  // Four hard-decision flips would defeat RM(1,4)'s radius, but at tiny
  // confidence they lose to the twelve full-confidence agreeing symbols —
  // the case hard-decision decoding gets wrong by construction.
  auto codec = MakeCodec("rm:4").ValueOrDie();
  BitVec payload = RandomPayload(5, 19);
  BitVec code = codec->Encode(payload);
  std::vector<SoftBit> soft = CleanWord(code);
  for (size_t i : {0u, 3u, 8u, 13u}) soft[i].value *= -0.05;
  DecodedMessage d = codec->Decode(soft);
  EXPECT_EQ(d.payload, payload);
}

TEST(CodecTest, FullyErasedBlockReportsErasedBits) {
  auto codec = MakeCodec("hamming").ValueOrDie();
  BitVec payload = RandomPayload(8, 23);  // two blocks
  BitVec code = codec->Encode(payload);
  std::vector<SoftBit> soft = CleanWord(code);
  for (size_t i = 0; i < 7; ++i) soft[i].erased = true;  // first block gone
  DecodedMessage d = codec->Decode(soft);
  EXPECT_EQ(d.bits_erased, 4u);
  EXPECT_EQ(d.bits_recovered, 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(d.bit_erased[i]);
    EXPECT_EQ(d.confidences[i], 0.0);
  }
  for (size_t i = 4; i < 8; ++i) {
    EXPECT_FALSE(d.bit_erased[i]);
    EXPECT_EQ(d.payload.Get(i), payload.Get(i));
  }
}

TEST(CodecTest, RepetitionWeighsConfidenceNotJustCount) {
  // Two low-confidence wrong copies vs one full-confidence right copy: a
  // counted majority decodes wrong, the weighted vote decodes right.
  auto codec = MakeCodec("repetition:3").ValueOrDie();
  BitVec payload(1);
  payload.Set(0, true);
  BitVec code = codec->Encode(payload);
  std::vector<SoftBit> soft = CleanWord(code);
  soft[0].value = -0.1;
  soft[1].value = -0.1;
  soft[2].value = 1.0;
  DecodedMessage d = codec->Decode(soft);
  EXPECT_TRUE(d.payload.Get(0));
  EXPECT_EQ(d.corrected, 2u);
}

TEST(CodecTest, MakeCodecRejectsBadSpecs) {
  for (const char* bad : {"", "turbo", "repetition:0", "repetition:65",
                          "repetition:x", "rm:1", "rm:6", "rm:abc",
                          "hamming:7"}) {
    auto codec = MakeCodec(bad);
    EXPECT_FALSE(codec.ok()) << bad;
    EXPECT_EQ(codec.status().code(), StatusCode::kInvalidArgument) << bad;
  }
  EXPECT_EQ(MakeCodec("repetition").ValueOrDie()->BlockLength(), 3u);
  EXPECT_EQ(MakeCodec("rm").ValueOrDie()->BlockLength(), 16u);
}

// --- Interleaver ------------------------------------------------------------

TEST(InterleaverTest, SpreadGatherBijection) {
  for (size_t depth : {1u, 2u, 5u}) {
    for (size_t block : {1u, 3u, 7u, 16u}) {
      BlockInterleaver il(depth, block);
      std::vector<bool> hit(il.size(), false);
      for (size_t i = 0; i < il.size(); ++i) {
        const size_t slot = il.Spread(i);
        ASSERT_LT(slot, il.size());
        EXPECT_FALSE(hit[slot]);
        hit[slot] = true;
        EXPECT_EQ(il.Gather(slot), i);
      }
    }
  }
}

TEST(InterleaverTest, BurstSpreadsAcrossCodewords) {
  // A contiguous channel burst of length L costs each codeword at most
  // ceil(L / depth) symbols — the property the codec radius is sized for.
  const size_t depth = 4, block = 7;
  BlockInterleaver il(depth, block);
  const size_t burst = 8;  // two full stripes
  std::vector<size_t> per_codeword(depth, 0);
  for (size_t slot = 5; slot < 5 + burst; ++slot) {
    ++per_codeword[il.Gather(slot) / block];
  }
  for (size_t c = 0; c < depth; ++c) {
    EXPECT_LE(per_codeword[c], (burst + depth - 1) / depth);
  }
}

// --- Verdict ----------------------------------------------------------------

TEST(VerdictTest, NoEvidenceIsNoMark) {
  DetectionVerdict v = JudgeDetection(0, 0, 8, 0, 0, 0, 0);
  EXPECT_EQ(v.kind, VerdictKind::kNoMark);
  EXPECT_EQ(v.fp_bound, 1.0);
  EXPECT_EQ(v.ExitCode(), 1);
}

TEST(VerdictTest, StrongEvidenceIsMatchWithTinyBound) {
  // 200 unanimous votes on an 8-bit payload: fp <= 2^8 * exp(-100).
  DetectionVerdict v = JudgeDetection(200, 200, 8, 0, 40, 0, 0);
  EXPECT_EQ(v.kind, VerdictKind::kMatch);
  EXPECT_LE(v.fp_bound, 1e-6);
  EXPECT_NEAR(v.log10_fp_bound,
              8 * std::log10(2.0) - 100.0 / std::log(10.0), 1e-9);
  EXPECT_EQ(v.ExitCode(), 0);
}

TEST(VerdictTest, BoundIsMonotoneInEvidence) {
  double prev = 1.0;
  for (int64_t u : {10, 40, 90, 160}) {
    DetectionVerdict v = JudgeDetection(u, 200, 8, 0, 0, 0, 0);
    EXPECT_LE(v.fp_bound, prev);
    prev = v.fp_bound;
  }
}

TEST(VerdictTest, ErasuresForcePartial) {
  // Erased payload bits always force PARTIAL, however strong the surviving
  // evidence is.
  DetectionVerdict strong = JudgeDetection(200, 200, 8, 1, 40, 0, 0);
  EXPECT_EQ(strong.kind, VerdictKind::kPartial);
  EXPECT_EQ(strong.ExitCode(), 3);
  // Channel erasures the decoder filled in do not spoil a confident match —
  // correcting them is the point of the coding layer...
  DetectionVerdict filled = JudgeDetection(200, 200, 8, 0, 38, 0, 2);
  EXPECT_EQ(filled.kind, VerdictKind::kMatch);
  // ...but they downgrade weak evidence from NO MARK to PARTIAL: a damaged
  // suspect is inconclusive, not provably unmarked.
  DetectionVerdict weak = JudgeDetection(5, 5, 8, 0, 3, 0, 2);
  EXPECT_EQ(weak.kind, VerdictKind::kPartial);
}

TEST(VerdictTest, WeakEvidenceWithoutDamageIsNoMark) {
  // A handful of votes cannot clear 1e-6 for an 8-bit payload.
  DetectionVerdict v = JudgeDetection(5, 5, 8, 0, 5, 0, 0);
  EXPECT_EQ(v.kind, VerdictKind::kNoMark);
  EXPECT_GT(v.fp_bound, 1e-6);
}

TEST(VerdictTest, ExtremeEvidenceDoesNotUnderflowLogBound) {
  // u = N = 1e5 would make exp(-u^2/2N) flush to 0 in double arithmetic;
  // the log10 bound must stay finite and huge.
  DetectionVerdict v = JudgeDetection(100000, 100000, 8, 0, 0, 0, 0);
  EXPECT_EQ(v.kind, VerdictKind::kMatch);
  EXPECT_LT(v.log10_fp_bound, -20000.0);
  EXPECT_TRUE(std::isfinite(v.log10_fp_bound));
}

TEST(VerdictTest, ThresholdIsConfigurable) {
  VerdictOptions lax;
  lax.fp_threshold = 1e-2;
  DetectionVerdict v = JudgeDetection(30, 100, 4, 0, 0, 0, 0, lax);
  // 2^4 * exp(-4.5) ~ 0.18: above even the lax threshold.
  EXPECT_EQ(v.kind, VerdictKind::kNoMark);
  DetectionVerdict w = JudgeDetection(60, 100, 4, 0, 0, 0, 0, lax);
  // 2^4 * exp(-18) ~ 2.4e-7: below the lax threshold.
  EXPECT_EQ(w.kind, VerdictKind::kMatch);
  EXPECT_EQ(w.fp_threshold, 1e-2);
}

}  // namespace
}  // namespace qpwm
