#include "qpwm/stream/detect_loop.h"

#include <utility>

#include "qpwm/util/check.h"

namespace qpwm {

EpochDetector::EpochDetector(const CodedWatermark& coded, BitVec payload,
                             uint64_t seed, DetectLoopOptions options)
    : coded_(&coded), payload_(std::move(payload)), seed_(seed),
      options_(options) {
  QPWM_CHECK_EQ(payload_.size(), coded.PayloadBits());
  QPWM_CHECK(options_.max_attempts >= 1);
}

std::optional<DetectOutcome> EpochDetector::Tick(const StreamSnapshot& snap) {
  if (backoff_windows_ > 0) {
    --backoff_windows_;
    ticks_in_pass_ += options_.backoff_window_ticks;
    return std::nullopt;
  }

  const FaultPlan plan = MakeFaultPlan(seed_, attempt_counter_++, options_.faults);
  FaultyAnswerServer faulty(*snap.serving, plan);
  Result<CodedDetection> detection =
      coded_->Detect(snap.original, faulty, DetectOptions{});
  ++attempts_in_pass_;
  ticks_in_pass_ += faulty.ticks();

  // A pass whose epoch was yanked (or whose answer batch failed, or — belt
  // and braces — whose snapshot was retired under it) produced garbage
  // observations; discard them and retry against the next snapshot.
  const bool lost = faulty.faulted() || !detection.ok();
  if (lost) {
    if (attempts_in_pass_ >= options_.max_attempts) {
      DetectOutcome out;
      out.pass = pass_counter_++;
      out.epoch = snap.epoch;
      out.gave_up = true;
      out.attempts = attempts_in_pass_;
      out.ticks = ticks_in_pass_;
      ++gave_up_;
      attempts_in_pass_ = 0;
      ticks_in_pass_ = 0;
      outcomes_.push_back(out);
      return out;
    }
    ++retried_;
    backoff_windows_ = attempts_in_pass_;  // bounded linear backoff
    return std::nullopt;
  }

  DetectOutcome out = Judge(detection.value(), snap.epoch, attempts_in_pass_,
                            ticks_in_pass_);
  out.pass = pass_counter_++;
  attempts_in_pass_ = 0;
  ticks_in_pass_ = 0;
  outcomes_.push_back(out);
  return out;
}

DetectOutcome EpochDetector::Audit(const StreamSnapshot& snap) const {
  FaultyAnswerServer clean(*snap.serving, FaultPlan{});
  Result<CodedDetection> detection =
      coded_->Detect(snap.original, clean, DetectOptions{});
  QPWM_CHECK(detection.ok());
  return Judge(detection.value(), snap.epoch, /*attempts=*/1, clean.ticks());
}

DetectOutcome EpochDetector::Judge(const CodedDetection& detection,
                                   uint64_t epoch, uint32_t attempts,
                                   uint64_t ticks) const {
  DetectOutcome out;
  out.epoch = epoch;
  out.attempts = attempts;
  out.ticks = ticks;
  out.verdict = detection.verdict.kind;
  out.log10_fp_bound = detection.verdict.log10_fp_bound;
  out.bits_erased = detection.message.bits_erased;
  out.pairs_erased = detection.channel.pairs_erased;
  out.votes_cast = detection.verdict.votes_cast;
  out.payload_correct = detection.message.payload.size() == payload_.size();
  for (size_t i = 0; out.payload_correct && i < payload_.size(); ++i) {
    out.payload_correct = detection.message.payload.Get(i) == payload_.Get(i);
  }
  return out;
}

}  // namespace qpwm
