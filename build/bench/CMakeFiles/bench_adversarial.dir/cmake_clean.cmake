file(REMOVE_RECURSE
  "CMakeFiles/bench_adversarial.dir/bench_adversarial.cc.o"
  "CMakeFiles/bench_adversarial.dir/bench_adversarial.cc.o.d"
  "bench_adversarial"
  "bench_adversarial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adversarial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
