#include "qpwm/xml/attack.h"

#include <charconv>
#include <string>
#include <vector>

#include "qpwm/structure/weighted.h"
#include "qpwm/util/str.h"

namespace qpwm {
namespace {

// Deep-copies `id`'s subtree from `src` into `dst`, skipping nodes marked in
// `drop` (and, implicitly, their descendants). Returns the new node id, or
// kNoXmlNode if the node itself was dropped.
XmlNodeId CopySubtree(const XmlDocument& src, XmlNodeId id, XmlDocument& dst,
                      const std::vector<bool>& drop) {
  if (drop[id]) return kNoXmlNode;
  const XmlNode& n = src.node(id);
  if (n.kind == XmlNode::Kind::kText) return dst.AddText(n.text);
  XmlNodeId copy = dst.AddElement(n.tag);
  for (const XmlAttr& a : n.attrs) dst.AddAttribute(copy, a.name, a.value);
  for (XmlNodeId c : n.children) {
    XmlNodeId child_copy = CopySubtree(src, c, dst, drop);
    if (child_copy != kNoXmlNode) dst.AppendChild(copy, child_copy);
  }
  return copy;
}

// Deep-copies a subtree into the same document, jittering integer text.
XmlNodeId CloneWithJitter(XmlDocument& doc, XmlNodeId id, Rng& rng) {
  const XmlNode n = doc.node(id);  // copy: AddElement may reallocate the arena
  if (n.kind == XmlNode::Kind::kText) {
    Weight value = 0;
    auto [ptr, ec] =
        std::from_chars(n.text.data(), n.text.data() + n.text.size(), value);
    if (ec == std::errc() && ptr == n.text.data() + n.text.size()) {
      return doc.AddText(StrCat(value + rng.Uniform(-3, 3)));
    }
    return doc.AddText(n.text);
  }
  XmlNodeId copy = doc.AddElement(n.tag);
  for (const XmlAttr& a : n.attrs) doc.AddAttribute(copy, a.name, a.value);
  for (XmlNodeId c : n.children) doc.AppendChild(copy, CloneWithJitter(doc, c, rng));
  return copy;
}

}  // namespace

XmlDocument SubtreeDeletionAttack(const XmlDocument& doc, double drop_frac,
                                  Rng& rng) {
  std::vector<bool> drop(doc.size(), false);
  for (XmlNodeId id = 0; id < doc.size(); ++id) {
    if (id == doc.root()) continue;
    if (doc.node(id).kind != XmlNode::Kind::kElement) continue;
    drop[id] = rng.Bernoulli(drop_frac);
  }
  XmlDocument out;
  XmlNodeId root = CopySubtree(doc, doc.root(), out, drop);
  out.SetRoot(root);
  return out;
}

XmlDocument ElementInsertionAttack(const XmlDocument& doc, double insert_frac,
                                   Rng& rng) {
  XmlDocument out = doc;
  std::vector<XmlNodeId> candidates;
  for (XmlNodeId id = 0; id < doc.size(); ++id) {
    const XmlNode& n = doc.node(id);
    if (n.kind == XmlNode::Kind::kElement && n.parent != kNoXmlNode) {
      candidates.push_back(id);
    }
  }
  if (candidates.empty()) return out;
  const size_t insertions =
      static_cast<size_t>(insert_frac * static_cast<double>(candidates.size()) + 0.5);
  for (size_t i = 0; i < insertions; ++i) {
    XmlNodeId victim = candidates[rng.Below(candidates.size())];
    XmlNodeId parent = out.node(victim).parent;
    out.AppendChild(parent, CloneWithJitter(out, victim, rng));
  }
  return out;
}

}  // namespace qpwm
