#include "qpwm/util/status.h"

#include <cstdio>
#include <cstdlib>

namespace qpwm {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kCapacityExhausted: return "CapacityExhausted";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kDetectionFailed: return "DetectionFailed";
    case StatusCode::kInternal: return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "Result::ValueOrDie on error: %s\n", status.ToString().c_str());
  std::abort();
}

}  // namespace qpwm
