#include <gtest/gtest.h>

#include "qpwm/logic/parser.h"
#include "qpwm/tree/decomposition.h"
#include "qpwm/tree/mso.h"
#include "qpwm/tree/query.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

class DecompositionTest : public ::testing::Test {
 protected:
  DecompositionTest() {
    sigma_.Intern("a");
    sigma_.Intern("b");
    sigma_.Intern("c");
  }

  Dta CompileQuery(const std::string& text, std::vector<std::string> vars) {
    FormulaPtr f = MustParseFormula(text);
    return CompileMso(*f, sigma_, vars).ValueOrDie().dta;
  }

  // Exhaustively verifies the Lemma 3 neutrality property of every paired
  // region: parameters outside the region cannot distinguish b+ from b-.
  void VerifyNeutrality(const BinaryTree& t, const Dta& dta, uint32_t param_arity,
                        const std::vector<MarkRegion>& regions) {
    for (const MarkRegion& region : regions) {
      if (!region.paired()) continue;
      std::vector<bool> in_region(t.size(), false);
      for (NodeId w : region.nodes) in_region[w] = true;
      if (param_arity == 0) continue;  // no external parameters to test
      for (NodeId a = 0; a < t.size(); ++a) {
        if (in_region[a]) continue;
        EXPECT_EQ(MemberWa(t, t.labels(), 3, dta, 1, a, region.b_plus),
                  MemberWa(t, t.labels(), 3, dta, 1, a, region.b_minus))
            << "a=" << a << " pair=(" << region.b_plus << "," << region.b_minus << ")";
      }
    }
  }

  Alphabet sigma_;
};

TEST_F(DecompositionTest, RegionsAreDisjointAndPairsInside) {
  Dta dta = CompileQuery("LEQ(u, v) & P_b(v)", {"u", "v"});
  Rng rng(31);
  BinaryTree t = RandomBinaryTree(300, 3, rng);
  DecompositionStats stats;
  auto regions = FindMarkRegions(t, t.labels(), 3, dta, 1, {}, &stats);

  std::vector<int> owner(t.size(), -1);
  for (size_t i = 0; i < regions.size(); ++i) {
    for (NodeId v : regions[i].nodes) {
      EXPECT_EQ(owner[v], -1) << "node in two regions";
      owner[v] = static_cast<int>(i);
    }
    if (regions[i].paired()) {
      EXPECT_EQ(owner[regions[i].b_plus], static_cast<int>(i));
      EXPECT_EQ(owner[regions[i].b_minus], static_cast<int>(i));
      EXPECT_NE(regions[i].b_plus, regions[i].b_minus);
    }
  }
  EXPECT_EQ(stats.paired + stats.unpaired, regions.size());
  EXPECT_GT(stats.paired, 0u);
}

TEST_F(DecompositionTest, NeutralityHolds) {
  Dta dta = CompileQuery("LEQ(u, v) & P_b(v)", {"u", "v"});
  Rng rng(32);
  for (int trial = 0; trial < 3; ++trial) {
    BinaryTree t = RandomBinaryTree(120 + rng.Below(150), 3, rng);
    DecompositionStats stats;
    auto regions = FindMarkRegions(t, t.labels(), 3, dta, 1, {}, &stats);
    VerifyNeutrality(t, dta, 1, regions);
  }
}

TEST_F(DecompositionTest, NeutralityOnChainTrees) {
  Dta dta = CompileQuery("S1(u, v) | S2(u, v) | LEQ(v, u)", {"u", "v"});
  BinaryTree t = ChainTree(200, 3);
  DecompositionStats stats;
  auto regions = FindMarkRegions(t, t.labels(), 3, dta, 1, {}, &stats);
  VerifyNeutrality(t, dta, 1, regions);
}

TEST_F(DecompositionTest, ParamFreeQuery) {
  Dta dta = CompileQuery("P_b(v) & ~ROOT(v)", {"v"});
  Rng rng(33);
  BinaryTree t = RandomBinaryTree(150, 3, rng);
  DecompositionStats stats;
  auto regions = FindMarkRegions(t, t.labels(), 3, dta, 0, {}, &stats);
  EXPECT_GT(stats.paired, 0u);
  // For k = 0 neutrality means membership in W itself is equal.
  for (const auto& region : regions) {
    if (!region.paired()) continue;
    EXPECT_EQ(MemberWa(t, t.labels(), 3, dta, 0, 0, region.b_plus),
              MemberWa(t, t.labels(), 3, dta, 0, 0, region.b_minus));
  }
}

TEST_F(DecompositionTest, CapacityGrowsLinearly) {
  Dta dta = CompileQuery("LEQ(u, v) & P_b(v)", {"u", "v"});
  Rng rng(34);
  size_t last_paired = 0;
  for (size_t n : {200, 400, 800}) {
    BinaryTree t = RandomBinaryTree(n, 3, rng);
    DecompositionStats stats;
    FindMarkRegions(t, t.labels(), 3, dta, 1, {}, &stats);
    EXPECT_GT(stats.paired, last_paired);
    last_paired = stats.paired;
  }
}

TEST_F(DecompositionTest, KeyedShuffleChangesPairs) {
  Dta dta = CompileQuery("LEQ(u, v) & P_b(v)", {"u", "v"});
  Rng rng(35);
  BinaryTree t = RandomBinaryTree(400, 3, rng);
  DecompositionOptions o1, o2;
  o1.shuffle_seed = 1;
  o2.shuffle_seed = 2;
  auto r1 = FindMarkRegions(t, t.labels(), 3, dta, 1, o1, nullptr);
  auto r2 = FindMarkRegions(t, t.labels(), 3, dta, 1, o2, nullptr);
  // Same decomposition skeleton is likely, but at least one pair should
  // differ between keys (the attacker cannot predict pair positions).
  bool any_diff = r1.size() != r2.size();
  for (size_t i = 0; !any_diff && i < r1.size(); ++i) {
    any_diff = r1[i].b_plus != r2[i].b_plus || r1[i].b_minus != r2[i].b_minus;
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(DecompositionTest, CandidateFilterRespected) {
  Dta dta = CompileQuery("LEQ(u, v) & P_b(v)", {"u", "v"});
  Rng rng(36);
  BinaryTree t = RandomBinaryTree(300, 3, rng);
  std::vector<bool> filter(t.size(), false);
  for (NodeId v = 0; v < t.size(); ++v) filter[v] = t.label(v) == 1;
  auto regions = FindMarkRegions(t, t.labels(), 3, dta, 1, {}, nullptr, &filter);
  for (const auto& region : regions) {
    if (!region.paired()) continue;
    EXPECT_TRUE(filter[region.b_plus]);
    EXPECT_TRUE(filter[region.b_minus]);
  }
}

TEST_F(DecompositionTest, MinRegionSizeHonored) {
  Dta dta = CompileQuery("LEQ(u, v) & P_b(v)", {"u", "v"});
  Rng rng(37);
  BinaryTree t = RandomBinaryTree(300, 3, rng);
  DecompositionOptions opts;
  opts.min_region_size = 40;
  auto regions = FindMarkRegions(t, t.labels(), 3, dta, 1, opts, nullptr);
  for (const auto& region : regions) {
    EXPECT_GE(region.nodes.size(), 40u);
  }
}

}  // namespace
}  // namespace qpwm
