// XPath subset for the paper's Example 4 queries:
//
//   school/student[firstname=$1]/exam
//   school//exam                          (descendant axis)
//
// Steps are child (`/`) or descendant (`//`) steps with an optional equality
// predicate on a child element's text, whose right-hand side is either a
// literal or the user parameter ($1). The query compiles into MSO over the
// binary encoding (child = S1 then an S2-chain; descendant = LEQ below the
// first child, both first-order on the encoding) and from there into a tree
// automaton via CompileMso — the paper's Theorem 4 pipeline for XML, end to
// end.
#ifndef QPWM_XML_XPATH_H_
#define QPWM_XML_XPATH_H_

#include <optional>
#include <string>
#include <vector>

#include "qpwm/logic/formula.h"
#include "qpwm/tree/mso.h"
#include "qpwm/util/status.h"
#include "qpwm/xml/encode.h"

namespace qpwm {

struct XPathStep {
  std::string tag;
  std::optional<std::string> pred_tag;      // [pred_tag = ...]
  std::optional<std::string> pred_literal;  // literal RHS
  bool pred_is_param = false;               // $1 RHS
  /// True when this step is reached via `//` (descendant-or-below) instead
  /// of `/` (child). A leading `//` matches the tag anywhere in the document.
  bool descendant_axis = false;
};

/// A parsed XPath-subset query.
class XPathQuery {
 public:
  [[nodiscard]] static Result<XPathQuery> Parse(std::string_view text);

  const std::vector<XPathStep>& steps() const { return steps_; }
  /// True if some predicate references the user parameter $1.
  bool has_param() const;

  /// The equivalent MSO formula over the binary encoding. Free variables:
  /// "u" (the parameter's text node, when has_param()) and "v" (the result
  /// element node). Label disjunctions are expanded against the document's
  /// alphabet.
  [[nodiscard]] Result<FormulaPtr> ToMso(const EncodedXml& encoded) const;

  /// Full pipeline: MSO, then automaton with tracks [u, v] (or [v]).
  [[nodiscard]] Result<TrackedDta> Compile(const EncodedXml& encoded) const;

  /// Reference semantics, straight on the DOM: the XML ids selected when the
  /// parameter equals `param_value` (ignored for parameter-free queries).
  std::vector<XmlNodeId> EvaluateOnDom(const XmlDocument& doc,
                                       const std::string& param_value) const;

  /// Tree nodes that are valid parameter bindings: text nodes under a
  /// pred-tag element anywhere the parameterized predicate applies.
  std::vector<NodeId> ParamTreeNodes(const EncodedXml& encoded) const;

 private:
  std::vector<XPathStep> steps_;
};

}  // namespace qpwm

#endif  // QPWM_XML_XPATH_H_
