// Minimal XML document object model: elements with attributes, text nodes.
// Built from scratch (no external XML library): enough for the paper's
// Example 4 documents and their scaled-up benchmark variants.
#ifndef QPWM_XML_DOM_H_
#define QPWM_XML_DOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qpwm/util/check.h"
#include "qpwm/util/status.h"

namespace qpwm {

/// Index of a node within its document.
using XmlNodeId = uint32_t;
constexpr XmlNodeId kNoXmlNode = UINT32_MAX;

struct XmlAttr {
  std::string name;
  std::string value;
};

struct XmlNode {
  enum class Kind { kElement, kText };
  Kind kind = Kind::kElement;
  std::string tag;    // element tag name
  std::string text;   // text content (kText)
  std::vector<XmlAttr> attrs;
  std::vector<XmlNodeId> children;  // element children, in document order
  XmlNodeId parent = kNoXmlNode;
};

/// An XML document: a node arena plus the root element.
class XmlDocument {
 public:
  XmlNodeId AddElement(std::string tag);
  XmlNodeId AddText(std::string text);
  void AppendChild(XmlNodeId parent, XmlNodeId child);
  void AddAttribute(XmlNodeId element, std::string name, std::string value);
  void SetRoot(XmlNodeId root);

  XmlNodeId root() const { return root_; }
  size_t size() const { return nodes_.size(); }
  const XmlNode& node(XmlNodeId id) const { return nodes_[id]; }
  XmlNode& mutable_node(XmlNodeId id) { return nodes_[id]; }

  /// Concatenated text of the node's direct text children.
  std::string TextContent(XmlNodeId id) const;

  /// First child element with the given tag, if any.
  [[nodiscard]] Result<XmlNodeId> ChildByTag(XmlNodeId id, const std::string& tag) const;

 private:
  std::vector<XmlNode> nodes_;
  XmlNodeId root_ = kNoXmlNode;
};

/// Serializes with 2-space indentation; text is entity-escaped.
std::string SerializeXml(const XmlDocument& doc);

}  // namespace qpwm

#endif  // QPWM_XML_DOM_H_
