#include "qpwm/core/pairs.h"

#include <algorithm>

#include "qpwm/util/check.h"

namespace qpwm {

PairMarking::PairMarking(const QueryIndex& index, std::vector<WeightPair> pairs)
    : index_(&index), pairs_(std::move(pairs)) {
  for (const WeightPair& p : pairs_) {
    QPWM_CHECK_LT(p.plus, index.num_active());
    QPWM_CHECK_LT(p.minus, index.num_active());
    QPWM_CHECK_NE(p.plus, p.minus);
  }
}

int PairMarking::Contribution(size_t pair_idx, size_t param_idx) const {
  const WeightPair& p = pairs_[pair_idx];
  int c = 0;
  if (index_->Contains(param_idx, p.plus)) c += 1;
  if (index_->Contains(param_idx, p.minus)) c -= 1;
  return c;
}

std::vector<uint32_t> PairMarking::CostPerParam() const {
  std::vector<uint32_t> cost(index_->num_params(), 0);
  // Walk the inverse index instead of the (pair x param) product: each pair
  // only touches the parameters containing one of its two elements.
  for (const WeightPair& p : pairs_) {
    const auto& in_plus = index_->ParamsContaining(p.plus);
    const auto& in_minus = index_->ParamsContaining(p.minus);
    // Symmetric difference of the two sorted parameter lists.
    size_t i = 0, j = 0;
    while (i < in_plus.size() || j < in_minus.size()) {
      if (j == in_minus.size() || (i < in_plus.size() && in_plus[i] < in_minus[j])) {
        ++cost[in_plus[i++]];
      } else if (i == in_plus.size() || in_minus[j] < in_plus[i]) {
        ++cost[in_minus[j++]];
      } else {  // Both contain this parameter: contributions cancel.
        ++i;
        ++j;
      }
    }
  }
  return cost;
}

uint32_t PairMarking::MaxCost() const {
  uint32_t worst = 0;
  for (uint32_t c : CostPerParam()) worst = std::max(worst, c);
  return worst;
}

void PairMarking::Apply(const BitVec& mark, WeightMap& weights,
                        PairEncoding encoding) const {
  QPWM_CHECK_EQ(mark.size(), pairs_.size());
  for (size_t i = 0; i < pairs_.size(); ++i) {
    const WeightPair& p = pairs_[i];
    if (mark.Get(i)) {
      weights.Add(index_->active_element(p.plus), +1);
      weights.Add(index_->active_element(p.minus), -1);
    } else if (encoding == PairEncoding::kAntipodal) {
      weights.Add(index_->active_element(p.plus), -1);
      weights.Add(index_->active_element(p.minus), +1);
    }
  }
}

PairMarking PairMarking::Subset(const std::vector<uint32_t>& selection) const {
  std::vector<WeightPair> subset;
  subset.reserve(selection.size());
  for (uint32_t i : selection) {
    QPWM_CHECK_LT(i, pairs_.size());
    subset.push_back(pairs_[i]);
  }
  return PairMarking(*index_, std::move(subset));
}

}  // namespace qpwm
