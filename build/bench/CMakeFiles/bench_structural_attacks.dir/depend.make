# Empty dependencies file for bench_structural_attacks.
# This may be replaced when dependencies are built.
