# Empty dependencies file for bench_tree_scheme.
# This may be replaced when dependencies are built.
