// Locality of queries (Definition 5 and Gaifman's theorem).
//
// Gaifman's theorem: every FO query is local, with locality rank at most
// (7^q - 1) / 2 for quantifier rank q. On bounded-degree structures the rank
// combines with the degree bound k into the paper's Lemma 1 constant
// eta = 2 r k^(2 rho + 1), the maximal divergence |W_a \ W_b| between
// rho-equivalent parameters.
#ifndef QPWM_LOGIC_LOCALITY_H_
#define QPWM_LOGIC_LOCALITY_H_

#include <cstdint>
#include <vector>

#include "qpwm/logic/query.h"
#include "qpwm/structure/structure.h"

namespace qpwm {

/// Gaifman bound on the locality rank from the quantifier rank, saturating
/// at UINT32_MAX.
uint32_t GaifmanLocalityBound(uint32_t quantifier_rank);

/// Lemma 1 bound eta = 2 r k^(2 rho + 1) (saturating).
uint64_t LocalityDivergenceBound(uint32_t r, uint64_t degree_k, uint32_t rho);

/// Empirical check of Definition 5 restricted to one structure: partitions
/// the parameter domain by rho-neighborhood type and returns the largest
/// |W_a \ W_b| over same-type parameter pairs (0 for an "exactly rho-local"
/// query family, <= eta when Lemma 1 applies). Quadratic per type class;
/// meant for tests and small benches.
uint64_t MaxSameTypeDivergence(const Structure& g, const ParametricQuery& query,
                               uint32_t rho, const std::vector<Tuple>& domain);

}  // namespace qpwm

#endif  // QPWM_LOGIC_LOCALITY_H_
