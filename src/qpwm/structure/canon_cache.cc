#include "qpwm/structure/canon_cache.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "qpwm/structure/isomorphism.h"
#include "qpwm/util/hash.h"

namespace qpwm {
namespace {

constexpr int kRefineRounds = 2;

void Push32(std::string& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

// Bounded (two-round) color refinement with commutative multiset hashing.
// Isomorphism-invariant per element; much cheaper than the stability-checked
// refinement inside CanonicalForm (no per-element sorts, no partition ranks,
// flat buffers only).
void RefineColors(const Structure& s, const Tuple& dist,
                  std::vector<uint64_t>& colors, std::vector<uint64_t>& scratch) {
  const size_t n = s.universe_size();
  colors.assign(n, 0x9E3779B97F4A7C15ULL);
  for (size_t i = 0; i < dist.size(); ++i) {
    colors[dist[i]] = HashCombine(colors[dist[i]], 0xD157 + i);
  }
  for (int round = 0; round < kRefineRounds; ++round) {
    scratch.assign(colors.begin(), colors.end());
    for (size_t r = 0; r < s.num_relations(); ++r) {
      for (TupleRef t : s.relation(r).tuples()) {
        uint64_t h = HashCombine(0xABCD, r);
        for (ElemId e : t) h = HashCombine(h, colors[e]);
        for (size_t pos = 0; pos < t.size(); ++pos) {
          // Additive accumulation keeps the per-element contribution a
          // multiset invariant without sorting.
          scratch[t[pos]] += HashCombine(h, pos + 1);
        }
      }
    }
    colors.swap(scratch);
  }
}

// Refinement relabeling shared by the string key and the fingerprint:
// rank elements by (refined color, input id). When the colors are all
// distinct the input id never breaks a tie and the relabeling is canonical.
void RefinementRanks(const Structure& s, const Tuple& dist, CanonKeyScratch& sc) {
  RefineColors(s, dist, sc.colors, sc.tmp);
  const size_t n = s.universe_size();
  sc.order.resize(n);
  std::iota(sc.order.begin(), sc.order.end(), 0u);
  std::sort(sc.order.begin(), sc.order.end(), [&sc](ElemId a, ElemId b) {
    return sc.colors[a] != sc.colors[b] ? sc.colors[a] < sc.colors[b] : a < b;
  });
  sc.rank.resize(n);
  for (size_t i = 0; i < n; ++i) sc.rank[sc.order[i]] = static_cast<uint32_t>(i);
}

}  // namespace

std::string CanonCacheKey(const Structure& s, const Tuple& distinguished) {
  const size_t n = s.universe_size();
  CanonKeyScratch sc;
  RefinementRanks(s, distinguished, sc);

  size_t words = 2 + distinguished.size();
  for (size_t r = 0; r < s.num_relations(); ++r) {
    words += 2 + s.relation(r).size() * s.relation(r).arity();
  }
  std::string out;
  out.reserve(words * 4);
  Push32(out, static_cast<uint32_t>(n));
  Push32(out, static_cast<uint32_t>(distinguished.size()));
  for (ElemId e : distinguished) Push32(out, sc.rank[e]);
  std::vector<Tuple> remapped;
  for (size_t r = 0; r < s.num_relations(); ++r) {
    const TupleList tuples = s.relation(r).tuples();
    remapped.clear();
    remapped.reserve(tuples.size());
    for (TupleRef t : tuples) {
      Tuple m;
      m.reserve(t.size());
      for (ElemId e : t) m.push_back(sc.rank[e]);
      remapped.push_back(std::move(m));
    }
    std::sort(remapped.begin(), remapped.end());
    Push32(out, static_cast<uint32_t>(r));
    Push32(out, static_cast<uint32_t>(remapped.size()));
    for (const Tuple& t : remapped) {
      for (ElemId e : t) Push32(out, e);
    }
  }
  return out;
}

uint64_t NeighborhoodFingerprint(const Structure& s, const Tuple& distinguished) {
  return HashString(CanonCacheKey(s, distinguished));
}

CanonFingerprint NeighborhoodFingerprint128(const Structure& s,
                                            const Tuple& distinguished,
                                            CanonKeyScratch& scratch) {
  RefinementRanks(s, distinguished, scratch);

  // Two streams with distinct seeds; the second additionally perturbs every
  // input word so the streams never collapse to one function of the other.
  uint64_t lo = 0x51AB0FF1CE0ULL;
  uint64_t hi = 0xC0DEC0FFEE1ULL;
  auto mix = [&lo, &hi](uint64_t v) {
    lo = HashCombine(lo, v);
    hi = HashCombine(hi, v ^ 0xA5A5A5A5A5A5A5A5ULL);
  };
  mix(s.universe_size());
  mix(distinguished.size());
  for (ElemId e : distinguished) mix(scratch.rank[e]);
  mix(s.num_relations());
  for (size_t r = 0; r < s.num_relations(); ++r) {
    const Relation& rel = s.relation(r);
    // Per-relation commutative accumulation: each record hashes on its own,
    // the sums are order-insensitive — no record sort, unlike the string
    // key, yet records still compare as whole tuples.
    uint64_t sum_lo = 0;
    uint64_t sum_hi = 0;
    for (TupleRef t : rel.tuples()) {
      uint64_t h = HashCombine(0x7EC0DE, r);
      for (ElemId e : t) h = HashCombine(h, scratch.rank[e]);
      sum_lo += h;
      sum_hi += HashCombine(h, 0x5EED);
    }
    mix(rel.arity());
    mix(rel.size());
    lo = HashCombine(lo, sum_lo);
    hi = HashCombine(hi, sum_hi);
  }
  return {lo, hi};
}

CanonCache& CanonCache::Global() {
  static CanonCache* cache = new CanonCache();  // shared with pool workers; leaked
  return *cache;
}

uint32_t CanonCache::InternForm(std::string canon) {
  qpwm::MutexLock lock(intern_mu_);
  auto [it, inserted] =
      form_ids_.emplace(std::move(canon), static_cast<uint32_t>(form_by_id_.size()));
  if (inserted) form_by_id_.push_back(&it->first);
  return it->second;
}

uint32_t CanonCache::CanonicalId(const Structure& s, const Tuple& distinguished,
                                 CanonKeyScratch& scratch) {
  const CanonFingerprint fp = NeighborhoodFingerprint128(s, distinguished, scratch);
  Shard& shard = shards_[fp.hi % kShards];
  {
    qpwm::MutexLock lock(shard.mu);
    auto it = shard.map.find(fp);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  // Canonicalize outside the lock: concurrent misses on the same fingerprint
  // both compute (identical) forms and intern to the same id; emplace keeps
  // the first fingerprint entry.
  const uint32_t id = InternForm(CanonicalForm(s, distinguished));
  {
    qpwm::MutexLock lock(shard.mu);
    shard.map.emplace(fp, id);
  }
  return id;
}

std::string CanonCache::CanonicalOfId(uint32_t id) const {
  qpwm::MutexLock lock(intern_mu_);
  QPWM_CHECK_LT(id, form_by_id_.size());
  return *form_by_id_[id];
}

std::string CanonCache::Canonical(const Structure& s, const Tuple& distinguished) {
  CanonKeyScratch scratch;
  return CanonicalOfId(CanonicalId(s, distinguished, scratch));
}

CanonCache::Stats CanonCache::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    qpwm::MutexLock lock(shard.mu);
    const uint64_t n = shard.map.size();
    out.entries += n;
    out.shard_max = std::max(out.shard_max, n);
    // Unordered-map heap estimate: one bucket pointer per bucket plus one
    // node (payload + next pointer) per entry.
    out.bytes_resident +=
        shard.map.bucket_count() * sizeof(void*) +
        n * (sizeof(CanonFingerprint) + sizeof(uint32_t) + 2 * sizeof(void*));
  }
  out.shard_mean = static_cast<double>(out.entries) / static_cast<double>(kShards);
  {
    qpwm::MutexLock lock(intern_mu_);
    out.distinct_forms = form_by_id_.size();
    out.bytes_resident += form_by_id_.capacity() * sizeof(void*);
    // qpwm-lint: allow(unordered-iter) -- commutative byte-count sum
    for (const auto& [form, id] : form_ids_) {
      (void)id;
      out.bytes_resident += form.capacity() + sizeof(uint32_t) + 3 * sizeof(void*);
    }
  }
  return out;
}

void CanonCache::Clear() {
  for (Shard& shard : shards_) {
    qpwm::MutexLock lock(shard.mu);
    shard.map.clear();
  }
  {
    qpwm::MutexLock lock(intern_mu_);
    form_by_id_.clear();
    form_ids_.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

size_t CanonCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    qpwm::MutexLock lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

}  // namespace qpwm
