# Empty compiler generated dependencies file for qpwm_vc.
# This may be replaced when dependencies are built.
