// Unranked-to-binary encoding of XML (the paper's reference [15]):
// left child = first XML child, right child = next XML sibling. Elements are
// labeled by tag, text nodes by their content. Elements whose tag is
// registered as a *weight tag* must contain exactly one integer text child;
// that value moves into the weight map (weights are data, not structure —
// the watermark may distort them) and the text child disappears from the
// tree. Attributes become '@name' child elements with a text child.
#ifndef QPWM_XML_ENCODE_H_
#define QPWM_XML_ENCODE_H_

#include <set>
#include <string>
#include <vector>

#include "qpwm/structure/weighted.h"
#include "qpwm/tree/bintree.h"
#include "qpwm/util/status.h"
#include "qpwm/xml/dom.h"

namespace qpwm {

/// The binary-encoded form of an XML document.
struct EncodedXml {
  BinaryTree tree;
  Alphabet sigma;
  WeightMap weights;                    // over tree nodes (weight tags only)
  std::vector<bool> is_weight_node;     // tree node carries a weight
  std::vector<XmlNodeId> tree_to_xml;   // tree node -> originating XML node
  std::vector<NodeId> xml_to_tree;      // XML node -> tree node (or kNoNode)

  EncodedXml() : weights(1, 0) {}
};

/// Encodes `doc`. Fails if a weight-tagged element has no integer content.
[[nodiscard]] Result<EncodedXml> EncodeXml(const XmlDocument& doc,
                             const std::set<std::string>& weight_tags);

/// Writes (possibly watermarked) weights back into a copy of the document:
/// each weight element's text becomes the weight value.
XmlDocument ApplyWeights(const XmlDocument& doc, const EncodedXml& encoded,
                         const WeightMap& weights);

/// Alignment of a structurally tampered suspect document against the
/// original: which original weight nodes still have a counterpart in the
/// suspect, and what the suspect's values are. This is what lets the detector
/// serve erasure-aware answers over the original tree even when the suspect
/// dropped subtrees or inserted records (node ids no longer line up).
struct SuspectAlignment {
  /// Suspect values written over the original tree's node ids; unmatched
  /// nodes keep the original value (they are erased from answers anyway).
  WeightMap weights;
  /// present[v] == false iff tree node v is a weight node with no suspect
  /// counterpart — serve it as deleted.
  std::vector<bool> present;
  size_t matched = 0;  // original weight nodes found in the suspect
  size_t missing = 0;  // original weight nodes absent from the suspect
  size_t extra = 0;    // suspect weight records with no original counterpart

  SuspectAlignment() : weights(1, 0) {}
};

/// Matches the original's weight elements to the suspect's by record
/// signature — own tag, ancestor tag path, and the text of the parent's
/// non-weight children (the record's key fields) — in document order among
/// equal signatures. Fails only if a matched suspect element's content is not
/// an integer.
[[nodiscard]] Result<SuspectAlignment> AlignSuspectWeights(const XmlDocument& original,
                                             const EncodedXml& encoded,
                                             const XmlDocument& suspect,
                                             const std::set<std::string>& weight_tags);

/// The paper's Example 4 school document.
XmlDocument SchoolExampleDocument();

/// A scaled school document: `students` students with first names drawn
/// from a pool of `name_pool` (<= 8) names and random exam grades in
/// [grade_lo, grade_hi]. The MSO-compiled query automaton grows
/// exponentially with the distinct-name count (the compiled automaton must
/// distinguish the parameter's value), so benches sweep `name_pool`
/// deliberately.
class Rng;
XmlDocument RandomSchoolDocument(size_t students, Rng& rng, Weight grade_lo = 0,
                                 Weight grade_hi = 20, size_t name_pool = 3);

}  // namespace qpwm

#endif  // QPWM_XML_ENCODE_H_
