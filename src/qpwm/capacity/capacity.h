// Exact watermarking capacity (Theorem 1). #Mark counts the weight
// perturbation vectors m (one entry per active element, each in a bounded
// range) whose induced drift sum_{b in W_a} m_b meets a per-parameter
// constraint — exactly d for #Mark(=d), at most d in absolute value for
// #Mark(<=d). The counter is a DFS over elements with interval-based
// feasibility pruning; #P-hardness (reduction from PERMANENT) means every
// exact counter is exponential in the worst case, which the benchmark
// demonstrates empirically against Ryser's permanent.
#ifndef QPWM_CAPACITY_CAPACITY_H_
#define QPWM_CAPACITY_CAPACITY_H_

#include <cstdint>
#include <vector>

#include "qpwm/core/answers.h"

namespace qpwm {

/// The per-parameter incidence view the counter consumes: sets[a] lists the
/// element indices of W_a.
struct MarkCountProblem {
  size_t num_elements = 0;
  std::vector<std::vector<uint32_t>> sets;
  /// Allowed per-element perturbations (e.g. {-1, 0, +1}, or {0, +1} for the
  /// PERMANENT reduction).
  std::vector<int32_t> moves{-1, 0, +1};
};

MarkCountProblem ProblemFromQuery(const QueryIndex& index);

/// Number of perturbation vectors with drift(a) == d for every parameter.
uint64_t CountMarkingsExact(const MarkCountProblem& problem, int64_t d);

/// Number of perturbation vectors with |drift(a)| <= d for every parameter.
uint64_t CountMarkingsAtMost(const MarkCountProblem& problem, int64_t d);

/// Permanent of a 0/1 matrix via Ryser's formula, O(2^n n). n <= 30.
uint64_t Permanent01(const std::vector<std::vector<uint8_t>>& matrix);

/// Theorem 1's reduction: the bipartite graph with adjacency `matrix`
/// becomes a marking problem with moves {0, +1} whose #Mark(=1) equals the
/// number of perfect matchings (the permanent).
MarkCountProblem PermanentReduction(const std::vector<std::vector<uint8_t>>& matrix);

}  // namespace qpwm

#endif  // QPWM_CAPACITY_CAPACITY_H_
