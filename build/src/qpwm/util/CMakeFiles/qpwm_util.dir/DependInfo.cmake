
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qpwm/util/bitvec.cc" "src/qpwm/util/CMakeFiles/qpwm_util.dir/bitvec.cc.o" "gcc" "src/qpwm/util/CMakeFiles/qpwm_util.dir/bitvec.cc.o.d"
  "/root/repo/src/qpwm/util/hash.cc" "src/qpwm/util/CMakeFiles/qpwm_util.dir/hash.cc.o" "gcc" "src/qpwm/util/CMakeFiles/qpwm_util.dir/hash.cc.o.d"
  "/root/repo/src/qpwm/util/random.cc" "src/qpwm/util/CMakeFiles/qpwm_util.dir/random.cc.o" "gcc" "src/qpwm/util/CMakeFiles/qpwm_util.dir/random.cc.o.d"
  "/root/repo/src/qpwm/util/status.cc" "src/qpwm/util/CMakeFiles/qpwm_util.dir/status.cc.o" "gcc" "src/qpwm/util/CMakeFiles/qpwm_util.dir/status.cc.o.d"
  "/root/repo/src/qpwm/util/str.cc" "src/qpwm/util/CMakeFiles/qpwm_util.dir/str.cc.o" "gcc" "src/qpwm/util/CMakeFiles/qpwm_util.dir/str.cc.o.d"
  "/root/repo/src/qpwm/util/table.cc" "src/qpwm/util/CMakeFiles/qpwm_util.dir/table.cc.o" "gcc" "src/qpwm/util/CMakeFiles/qpwm_util.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
