#include "qpwm/structure/gaifman.h"

#include <algorithm>
#include <cstdint>
#include <deque>

namespace qpwm {

GaifmanGraph::GaifmanGraph(const Structure& s) {
  const size_t n = s.universe_size();
  // CSR build in three passes: count directed edge endpoints (duplicates
  // included), prefix-sum + fill, then per-element sort/unique with in-place
  // compaction. Matches the legacy vector-of-vectors construction exactly —
  // each neighbor list ends up sorted and deduplicated.
  offsets_.assign(n + 1, 0);
  for (size_t r = 0; r < s.num_relations(); ++r) {
    for (TupleRef t : s.relation(r).tuples()) {
      for (size_t i = 0; i < t.size(); ++i) {
        for (size_t j = i + 1; j < t.size(); ++j) {
          if (t[i] == t[j]) continue;
          ++offsets_[t[i] + 1];
          ++offsets_[t[j] + 1];
        }
      }
    }
  }
  for (size_t e = 0; e < n; ++e) offsets_[e + 1] += offsets_[e];
  neighbors_.resize(offsets_[n]);
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (size_t r = 0; r < s.num_relations(); ++r) {
    for (TupleRef t : s.relation(r).tuples()) {
      for (size_t i = 0; i < t.size(); ++i) {
        for (size_t j = i + 1; j < t.size(); ++j) {
          if (t[i] == t[j]) continue;
          neighbors_[cursor[t[i]]++] = t[j];
          neighbors_[cursor[t[j]]++] = t[i];
        }
      }
    }
  }
  uint32_t write = 0;
  uint32_t begin = 0;
  for (size_t e = 0; e < n; ++e) {
    const uint32_t end = offsets_[e + 1];
    std::sort(neighbors_.begin() + begin, neighbors_.begin() + end);
    const auto last = std::unique(neighbors_.begin() + begin, neighbors_.begin() + end);
    const uint32_t kept = static_cast<uint32_t>(last - (neighbors_.begin() + begin));
    std::copy(neighbors_.begin() + begin, neighbors_.begin() + begin + kept,
              neighbors_.begin() + write);
    begin = end;
    offsets_[e + 1] = write + kept;
    write += kept;
  }
  neighbors_.resize(write);
  neighbors_.shrink_to_fit();
}

size_t GaifmanGraph::MaxDegree() const {
  size_t k = 0;
  for (size_t e = 0; e + 1 < offsets_.size(); ++e) {
    k = std::max<size_t>(k, offsets_[e + 1] - offsets_[e]);
  }
  return k;
}

std::vector<ElemId> GaifmanGraph::Sphere(ElemId a, uint32_t rho) const {
  return Sphere(Tuple{a}, rho);
}

std::vector<ElemId> GaifmanGraph::Sphere(const Tuple& c, uint32_t rho) const {
  SphereScratch scratch;
  std::vector<ElemId> out;
  SphereInto(c, rho, scratch, out);
  return out;
}

void GaifmanGraph::SphereInto(const Tuple& c, uint32_t rho,
                              SphereScratch& scratch, std::vector<ElemId>& out) const {
  // Multi-source BFS by levels; the queue holds exactly the visited set, so
  // it doubles as the touched list for the bitmap reset.
  if (scratch.seen.size() != size()) scratch.seen.assign(size(), 0);
  scratch.queue.clear();
  for (ElemId a : c) {
    if (!scratch.seen[a]) {
      scratch.seen[a] = 1;
      scratch.queue.push_back(a);
    }
  }
  size_t level_begin = 0;
  for (uint32_t d = 0; d < rho; ++d) {
    const size_t level_end = scratch.queue.size();
    if (level_begin == level_end) break;
    for (size_t i = level_begin; i < level_end; ++i) {
      for (ElemId nb : Neighbors(scratch.queue[i])) {
        if (!scratch.seen[nb]) {
          scratch.seen[nb] = 1;
          scratch.queue.push_back(nb);
        }
      }
    }
    level_begin = level_end;
  }
  out.assign(scratch.queue.begin(), scratch.queue.end());
  std::sort(out.begin(), out.end());
  for (ElemId e : scratch.queue) scratch.seen[e] = 0;
}

uint32_t GaifmanGraph::Distance(ElemId a, ElemId b) const {
  if (a == b) return 0;
  std::vector<uint32_t> dist(size(), UINT32_MAX);
  std::deque<ElemId> queue{a};
  dist[a] = 0;
  while (!queue.empty()) {
    ElemId e = queue.front();
    queue.pop_front();
    for (ElemId nb : Neighbors(e)) {
      if (dist[nb] == UINT32_MAX) {
        dist[nb] = dist[e] + 1;
        if (nb == b) return dist[nb];
        queue.push_back(nb);
      }
    }
  }
  return UINT32_MAX;
}

}  // namespace qpwm
