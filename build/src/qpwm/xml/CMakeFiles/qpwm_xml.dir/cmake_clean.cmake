file(REMOVE_RECURSE
  "CMakeFiles/qpwm_xml.dir/attack.cc.o"
  "CMakeFiles/qpwm_xml.dir/attack.cc.o.d"
  "CMakeFiles/qpwm_xml.dir/dom.cc.o"
  "CMakeFiles/qpwm_xml.dir/dom.cc.o.d"
  "CMakeFiles/qpwm_xml.dir/encode.cc.o"
  "CMakeFiles/qpwm_xml.dir/encode.cc.o.d"
  "CMakeFiles/qpwm_xml.dir/parser.cc.o"
  "CMakeFiles/qpwm_xml.dir/parser.cc.o.d"
  "CMakeFiles/qpwm_xml.dir/xpath.cc.o"
  "CMakeFiles/qpwm_xml.dir/xpath.cc.o.d"
  "libqpwm_xml.a"
  "libqpwm_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpwm_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
