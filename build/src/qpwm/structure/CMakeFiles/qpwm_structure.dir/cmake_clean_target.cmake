file(REMOVE_RECURSE
  "libqpwm_structure.a"
)
