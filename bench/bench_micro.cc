// E13 — micro-benchmarks (google-benchmark): throughput of the primitives
// the schemes are built from — canonical forms, query indexing, automaton
// runs, the Lemma 3 decomposition and pair-cost accounting.
#include <benchmark/benchmark.h>

#include "qpwm/core/local_scheme.h"
#include "qpwm/core/pairs.h"
#include "qpwm/logic/parser.h"
#include "qpwm/structure/canon_cache.h"
#include "qpwm/structure/generators.h"
#include "qpwm/structure/isomorphism.h"
#include "qpwm/structure/neighborhood.h"
#include "qpwm/structure/typemap.h"
#include "qpwm/tree/decomposition.h"
#include "qpwm/tree/mso.h"
#include "qpwm/tree/query.h"
#include "qpwm/util/parallel.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

void BM_CanonicalForm(benchmark::State& state) {
  Rng rng(1);
  Structure g = RandomBoundedDegreeGraph(static_cast<size_t>(state.range(0)), 3,
                                         3 * state.range(0), false, rng);
  GaifmanGraph gg(g);
  IncidenceIndex idx(g);
  ElemId e = 0;
  for (auto _ : state) {
    Neighborhood nb = ExtractNeighborhood(g, gg, idx, Tuple{e}, 2);
    benchmark::DoNotOptimize(CanonicalForm(nb.local, nb.distinguished));
    e = (e + 1) % g.universe_size();
  }
}
BENCHMARK(BM_CanonicalForm)->Arg(100)->Arg(1000);

// The fingerprint/key the canonical-form cache hashes on — the per-tuple
// price every *hit* pays instead of a full canonicalization.
void BM_CanonCacheKey(benchmark::State& state) {
  Rng rng(1);
  Structure g = RandomBoundedDegreeGraph(static_cast<size_t>(state.range(0)), 3,
                                         3 * state.range(0), false, rng);
  GaifmanGraph gg(g);
  IncidenceIndex idx(g);
  ElemId e = 0;
  for (auto _ : state) {
    Neighborhood nb = ExtractNeighborhood(g, gg, idx, Tuple{e}, 2);
    benchmark::DoNotOptimize(CanonCacheKey(nb.local, nb.distinguished));
    e = (e + 1) % g.universe_size();
  }
}
BENCHMARK(BM_CanonCacheKey)->Arg(100)->Arg(1000);

// Hit path: every neighborhood was already canonicalized, so each call is
// extract + key + one sharded map lookup.
void BM_CanonicalFormCacheHit(benchmark::State& state) {
  Rng rng(1);
  Structure g = RandomBoundedDegreeGraph(static_cast<size_t>(state.range(0)), 3,
                                         3 * state.range(0), false, rng);
  GaifmanGraph gg(g);
  IncidenceIndex idx(g);
  CanonCache cache;
  for (ElemId e = 0; e < g.universe_size(); ++e) {  // prime
    Neighborhood nb = ExtractNeighborhood(g, gg, idx, Tuple{e}, 2);
    cache.Canonical(nb.local, nb.distinguished);
  }
  ElemId e = 0;
  for (auto _ : state) {
    Neighborhood nb = ExtractNeighborhood(g, gg, idx, Tuple{e}, 2);
    benchmark::DoNotOptimize(cache.Canonical(nb.local, nb.distinguished));
    e = (e + 1) % g.universe_size();
  }
}
BENCHMARK(BM_CanonicalFormCacheHit)->Arg(100)->Arg(1000);

// Miss path: cache cleared each iteration batch, so this is key + full
// canonicalization + insert (the worst case; contrast with BM_CanonicalForm).
void BM_CanonicalFormCacheMiss(benchmark::State& state) {
  Rng rng(1);
  Structure g = RandomBoundedDegreeGraph(static_cast<size_t>(state.range(0)), 3,
                                         3 * state.range(0), false, rng);
  GaifmanGraph gg(g);
  IncidenceIndex idx(g);
  CanonCache cache;
  ElemId e = 0;
  for (auto _ : state) {
    cache.Clear();
    Neighborhood nb = ExtractNeighborhood(g, gg, idx, Tuple{e}, 2);
    benchmark::DoNotOptimize(cache.Canonical(nb.local, nb.distinguished));
    e = (e + 1) % g.universe_size();
  }
}
BENCHMARK(BM_CanonicalFormCacheMiss)->Arg(100)->Arg(1000);

// Uncached baseline: every tuple canonicalizes from scratch (cache = nullptr,
// the pre-optimization typing loop).
void BM_NeighborhoodTyping(benchmark::State& state) {
  Rng rng(2);
  Structure g = RandomBoundedDegreeGraph(static_cast<size_t>(state.range(0)), 3,
                                         3 * state.range(0), false, rng);
  for (auto _ : state) {
    NeighborhoodTyper typer(g, 1, nullptr);
    for (ElemId e = 0; e < g.universe_size(); ++e) {
      benchmark::DoNotOptimize(typer.TypeOf(Tuple{e}));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NeighborhoodTyping)->Arg(500)->Arg(2000);

// Same loop through a (benchmark-local) canonical-form cache; after the first
// pass every repeated neighborhood type is a hit.
void BM_NeighborhoodTypingCached(benchmark::State& state) {
  Rng rng(2);
  Structure g = RandomBoundedDegreeGraph(static_cast<size_t>(state.range(0)), 3,
                                         3 * state.range(0), false, rng);
  CanonCache cache;
  for (auto _ : state) {
    NeighborhoodTyper typer(g, 1, &cache);
    for (ElemId e = 0; e < g.universe_size(); ++e) {
      benchmark::DoNotOptimize(typer.TypeOf(Tuple{e}));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NeighborhoodTypingCached)->Arg(500)->Arg(2000);

// Dispatch cost of an (empty-body) ParallelFor at various thread counts —
// what a hot path pays for choosing parallel dispatch over a plain loop.
void BM_ParallelForOverhead(benchmark::State& state) {
  SetParallelThreads(static_cast<size_t>(state.range(0)));
  std::vector<uint64_t> out(4096);
  for (auto _ : state) {
    ParallelFor(out.size(), [&](size_t i) { out[i] = i; });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
  SetParallelThreads(0);
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(2)->Arg(8);

void BM_QueryIndexBuild(benchmark::State& state) {
  Rng rng(3);
  Structure g = RandomBoundedDegreeGraph(static_cast<size_t>(state.range(0)), 3,
                                         3 * state.range(0), false, rng);
  auto query = AtomQuery::Adjacency("E");
  for (auto _ : state) {
    QueryIndex index(g, *query, AllParams(g, 1));
    benchmark::DoNotOptimize(index.num_active());
  }
}
BENCHMARK(BM_QueryIndexBuild)->Arg(1000)->Arg(10000);

void BM_PairCost(benchmark::State& state) {
  Rng rng(4);
  Structure g = RandomBoundedDegreeGraph(static_cast<size_t>(state.range(0)), 3,
                                         3 * state.range(0), false, rng);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));
  std::vector<WeightPair> pairs;
  for (uint32_t i = 0; i + 1 < index.num_active(); i += 2) pairs.push_back({i, i + 1});
  PairMarking marking(index, pairs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(marking.MaxCost());
  }
}
BENCHMARK(BM_PairCost)->Arg(1000)->Arg(10000);

void BM_LocalSchemePlan(benchmark::State& state) {
  Rng rng(5);
  Structure g = RandomBoundedDegreeGraph(static_cast<size_t>(state.range(0)), 3,
                                         3 * state.range(0), false, rng);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));
  LocalSchemeOptions opts;
  opts.key = {5, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(LocalScheme::Plan(index, opts).ValueOrDie());
  }
}
BENCHMARK(BM_LocalSchemePlan)->Arg(1000)->Arg(4000);

struct TreeFixtureData {
  Alphabet sigma;
  BinaryTree tree;
  Dta dta{0, 1};

  explicit TreeFixtureData(size_t n) {
    sigma.Intern("a");
    sigma.Intern("b");
    sigma.Intern("c");
    Rng rng(6);
    tree = RandomBinaryTree(n, 3, rng);
    dta = CompileMso(*MustParseFormula("LEQ(u, v) & P_b(v)"), sigma, {"u", "v"})
              .ValueOrDie()
              .dta;
  }
};

void BM_AutomatonRun(benchmark::State& state) {
  TreeFixtureData fixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.dta.RunRoot(fixture.tree, fixture.tree.labels()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AutomatonRun)->Arg(1000)->Arg(100000);

void BM_EvaluateWa(benchmark::State& state) {
  TreeFixtureData fixture(static_cast<size_t>(state.range(0)));
  NodeId a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvaluateWa(fixture.tree, fixture.tree.labels(), 3, fixture.dta, 1, a));
    a = (a + 1) % fixture.tree.size();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EvaluateWa)->Arg(1000)->Arg(30000);

void BM_FindMarkRegions(benchmark::State& state) {
  TreeFixtureData fixture(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    DecompositionStats stats;
    benchmark::DoNotOptimize(FindMarkRegions(fixture.tree, fixture.tree.labels(), 3,
                                             fixture.dta, 1, {}, &stats));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FindMarkRegions)->Arg(3000)->Arg(30000);

void BM_MsoCompile(benchmark::State& state) {
  Alphabet sigma;
  sigma.Intern("a");
  sigma.Intern("b");
  sigma.Intern("c");
  FormulaPtr f = MustParseFormula("exists w (CHILD(u, w) & P_b(w) & LEQ(w, v))");
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompileMso(*f, sigma, {"u", "v"}).ValueOrDie());
  }
}
BENCHMARK(BM_MsoCompile);

}  // namespace
}  // namespace qpwm
