#include "qpwm/coding/coded_watermark.h"

#include <utility>

#include "qpwm/util/check.h"

namespace qpwm {

CodedWatermark::CodedWatermark(const AdversarialScheme& channel,
                               const MessageCodec& codec, CodedOptions options)
    : channel_(&channel),
      codec_(&codec),
      options_(options),
      used_bits_(codec.UsedBits(channel.CapacityBits())),
      payload_bits_(codec.PayloadBits(channel.CapacityBits())),
      interleaver_(std::max<size_t>(codec.NumBlocks(channel.CapacityBits()), 1),
                   codec.BlockLength()) {}

size_t CodedWatermark::SlotOf(size_t codeword_index) const {
  return options_.interleave ? interleaver_.Spread(codeword_index)
                             : codeword_index;
}

BitVec CodedWatermark::ChannelWord(const BitVec& payload) const {
  QPWM_CHECK_EQ(payload.size(), payload_bits_);
  const BitVec codeword = codec_->Encode(payload);
  QPWM_CHECK_EQ(codeword.size(), used_bits_);
  BitVec word(channel_->CapacityBits());
  for (size_t i = 0; i < used_bits_; ++i) {
    word.Set(SlotOf(i), codeword.Get(i));
  }
  return word;
}

WeightMap CodedWatermark::Embed(const WeightMap& original,
                                const BitVec& payload) const {
  return channel_->Embed(original, ChannelWord(payload));
}

CodedDetection CodedWatermark::DecodeChannel(AdversarialDetection detection) const {
  const size_t redundancy = channel_->Redundancy();
  std::vector<SoftBit> soft(used_bits_);
  for (size_t i = 0; i < used_bits_; ++i) {
    const size_t slot = SlotOf(i);
    soft[i].erased = detection.bit_erased[slot];
    // Signed confidence: the group's integer vote difference, scaled so a
    // unanimous full group is +-1. The mark bit's sign is already carried by
    // the difference (positive = bit 1).
    soft[i].value = static_cast<double>(detection.vote_diffs[slot]) /
                    static_cast<double>(redundancy);
  }

  CodedDetection out;
  out.message = codec_->Decode(soft);

  // Verdict statistic: vote mass behind the re-encoded codeword, counted in
  // integer pair votes (u), over the votes actually cast on used groups (N).
  const BitVec codeword = codec_->Encode(out.message.payload);
  int64_t vote_weight = 0;
  uint64_t votes_cast = 0;
  size_t agree = 0;
  size_t disagree = 0;
  size_t erased = 0;
  for (size_t i = 0; i < used_bits_; ++i) {
    const size_t slot = SlotOf(i);
    if (detection.bit_erased[slot]) {
      ++erased;
      continue;
    }
    const int32_t diff = detection.vote_diffs[slot];
    const int sign = codeword.Get(i) ? +1 : -1;
    vote_weight += sign * static_cast<int64_t>(diff);
    votes_cast += detection.votes_cast[slot];
    if (diff == 0) continue;  // abstained: neither agreement nor conflict
    if ((diff > 0) == codeword.Get(i)) {
      ++agree;
    } else {
      ++disagree;
    }
  }
  out.verdict =
      JudgeDetection(vote_weight, votes_cast, out.message.payload.size(),
                     out.message.bits_erased, agree, disagree, erased,
                     options_.verdict);
  out.channel = std::move(detection);
  return out;
}

Result<CodedDetection> CodedWatermark::Detect(const WeightMap& original,
                                              const AnswerServer& suspect,
                                              const DetectOptions& options) const {
  auto detection = channel_->Detect(original, suspect, options);
  if (!detection.ok()) return detection.status();
  return DecodeChannel(std::move(detection).value());
}

std::vector<CodedDetection> CodedWatermark::DetectMany(
    const WeightMap& original, const std::vector<const AnswerServer*>& suspects,
    const DetectOptions& options) const {
  std::vector<AdversarialDetection> raw =
      channel_->DetectMany(original, suspects, options);
  std::vector<CodedDetection> out;
  out.reserve(raw.size());
  for (AdversarialDetection& d : raw) out.push_back(DecodeChannel(std::move(d)));
  return out;
}

}  // namespace qpwm
