
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qpwm/core/adversarial.cc" "src/qpwm/core/CMakeFiles/qpwm_core.dir/adversarial.cc.o" "gcc" "src/qpwm/core/CMakeFiles/qpwm_core.dir/adversarial.cc.o.d"
  "/root/repo/src/qpwm/core/answers.cc" "src/qpwm/core/CMakeFiles/qpwm_core.dir/answers.cc.o" "gcc" "src/qpwm/core/CMakeFiles/qpwm_core.dir/answers.cc.o.d"
  "/root/repo/src/qpwm/core/attack.cc" "src/qpwm/core/CMakeFiles/qpwm_core.dir/attack.cc.o" "gcc" "src/qpwm/core/CMakeFiles/qpwm_core.dir/attack.cc.o.d"
  "/root/repo/src/qpwm/core/distortion.cc" "src/qpwm/core/CMakeFiles/qpwm_core.dir/distortion.cc.o" "gcc" "src/qpwm/core/CMakeFiles/qpwm_core.dir/distortion.cc.o.d"
  "/root/repo/src/qpwm/core/incremental.cc" "src/qpwm/core/CMakeFiles/qpwm_core.dir/incremental.cc.o" "gcc" "src/qpwm/core/CMakeFiles/qpwm_core.dir/incremental.cc.o.d"
  "/root/repo/src/qpwm/core/local_scheme.cc" "src/qpwm/core/CMakeFiles/qpwm_core.dir/local_scheme.cc.o" "gcc" "src/qpwm/core/CMakeFiles/qpwm_core.dir/local_scheme.cc.o.d"
  "/root/repo/src/qpwm/core/pairs.cc" "src/qpwm/core/CMakeFiles/qpwm_core.dir/pairs.cc.o" "gcc" "src/qpwm/core/CMakeFiles/qpwm_core.dir/pairs.cc.o.d"
  "/root/repo/src/qpwm/core/tree_scheme.cc" "src/qpwm/core/CMakeFiles/qpwm_core.dir/tree_scheme.cc.o" "gcc" "src/qpwm/core/CMakeFiles/qpwm_core.dir/tree_scheme.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qpwm/logic/CMakeFiles/qpwm_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/qpwm/structure/CMakeFiles/qpwm_structure.dir/DependInfo.cmake"
  "/root/repo/build/src/qpwm/tree/CMakeFiles/qpwm_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/qpwm/util/CMakeFiles/qpwm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
