// The long-running watermarked server under an update stream.
//
// The server owns the live state — an evolving structure, the owner's
// original weights, and an HonestServer serving the marked copy — and admits
// or quarantines every submitted update:
//
//   * weight kinds apply immediately (a refresh moves original and marked
//     together, Theorem 7; an in-range write only moves the served copy —
//     the server cannot tell tampering from maintenance);
//   * structural kinds are shape-checked at submission (arity / relation /
//     universe — the immediate quarantine path) and staged; SealEpoch()
//     applies the staged batch through ApplyStructuralUpdates and admits it
//     only if the result passes the Theorem 8 type gate
//     (ValidateTypePreserving). A failing batch falls back to deterministic
//     per-update admission so one hostile update cannot veto an epoch of
//     honest churn.
//
// Every rejected update is quarantined with its Status reason and counted
// by StatusCode and by UpdateKind; the accounting invariant
// submitted == applied + rejected holds after every seal.
//
// SealEpoch() publishes an immutable epoch-stamped StreamSnapshot (structure
// + query index + owner originals + a ServingSnapshot of the marked copy)
// and retires the previous one. Detection reads snapshots only, so it never
// races the writer; the writer keeps mutating the live state underneath.
#ifndef QPWM_STREAM_STREAM_SERVER_H_
#define QPWM_STREAM_STREAM_SERVER_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "qpwm/core/answers.h"
#include "qpwm/core/incremental.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/stream/update.h"
#include "qpwm/util/status.h"

namespace qpwm {

/// Distinct StatusCode values (kOk .. kInternal), for dense counters.
inline constexpr size_t kNumStatusCodes =
    static_cast<size_t>(StatusCode::kInternal) + 1;

/// One published epoch: everything a detect pass needs, frozen. The
/// structure and index are shared with later epochs when no structural
/// update was admitted in between.
struct StreamSnapshot {
  uint64_t epoch = 0;
  std::shared_ptr<const Structure> structure;
  std::shared_ptr<const QueryIndex> index;
  /// Owner originals at seal time — the detector's reference weights.
  WeightMap original;
  /// Frozen marked weights behind the epoch's answer server.
  std::shared_ptr<const ServingSnapshot> serving;

  StreamSnapshot(uint64_t e, std::shared_ptr<const Structure> s,
                 std::shared_ptr<const QueryIndex> i, WeightMap orig,
                 std::shared_ptr<const ServingSnapshot> serve)
      : epoch(e), structure(std::move(s)), index(std::move(i)),
        original(std::move(orig)), serving(std::move(serve)) {}

  /// Superseded by a newer epoch? (Delegates to the serving snapshot's
  /// atomic flag; thread-safe.)
  bool retired() const { return serving->retired(); }
  void Retire() const { serving->Retire(); }
};

/// Quarantine/admission accounting. `submitted == applied + rejected` holds
/// whenever no structural updates are staged (i.e. after every SealEpoch).
struct StreamCounters {
  uint64_t submitted = 0;
  uint64_t applied = 0;
  uint64_t rejected = 0;
  std::array<uint64_t, kNumStatusCodes> rejected_by_code{};
  std::array<uint64_t, kNumUpdateKinds> submitted_by_kind{};
  std::array<uint64_t, kNumUpdateKinds> applied_by_kind{};
  std::array<uint64_t, kNumUpdateKinds> rejected_by_kind{};
  /// Epochs whose staged batch failed wholesale and was re-admitted
  /// per-update.
  uint64_t fallback_epochs = 0;
  uint64_t epochs_sealed = 0;
};

class StreamServer {
 public:
  /// `scheme` is the planning-time scheme whose pair layout the stream must
  /// keep valid (its type gate drives admission); `original` / `marked` are
  /// the owner's weights and the embedded copy at deployment time. The
  /// scheme — and the query object its index references — must outlive the
  /// server. The constructor publishes the epoch-0 snapshot.
  StreamServer(const LocalScheme& scheme, WeightMap original, WeightMap marked);

  /// Admits, stages, or quarantines one update. Weight updates resolve
  /// immediately; shape-valid structural updates return OK and resolve at
  /// the next SealEpoch(). After Freeze(), every submission is rejected
  /// with kFailedPrecondition.
  [[nodiscard]] Status Submit(const Update& u);

  /// Submit for callers that don't branch on the Status (the server has
  /// already recorded the outcome either way).
  void Ingest(const Update& u) {
    // qpwm-lint: allow(xtu-discarded-status) -- fire-and-forget by contract: Submit records every outcome in the server's admission counters
    const Status status = Submit(u);
    (void)status;
  }

  /// Resolves the staged structural batch, advances the epoch, publishes a
  /// fresh snapshot, and retires the previous one.
  std::shared_ptr<const StreamSnapshot> SealEpoch();

  /// Latest published snapshot (never null).
  std::shared_ptr<const StreamSnapshot> snapshot() const { return published_; }

  /// Stops ingestion: later Submits are rejected with kFailedPrecondition.
  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  const Structure& structure() const { return *structure_; }
  const QueryIndex& index() const { return *index_; }
  const WeightMap& original() const { return original_; }
  /// The live server over the marked copy. Its version() bumps with every
  /// weight mutation — the invalidate-on-mutate machinery under soak.
  const HonestServer& live() const { return *live_; }
  const StreamCounters& counters() const { return counters_; }
  uint64_t epoch() const { return epoch_; }
  size_t staged() const { return pending_.size(); }

 private:
  [[nodiscard]] Status SubmitImpl(const Update& u);
  void Reject(const Update& u, const Status& status);
  void Apply(const Update& u);
  /// Builds a QueryIndex over `g` with the scheme's query and domain.
  std::shared_ptr<const QueryIndex> BuildIndex(
      const std::shared_ptr<const Structure>& g) const;
  void Publish();

  const LocalScheme* scheme_;
  // qpwm-lint: allow(legacy-tuple-vector) — owned query-parameter domain snapshot
  std::vector<Tuple> domain_;
  std::shared_ptr<const Structure> structure_;
  std::shared_ptr<const QueryIndex> index_;
  WeightMap original_;
  std::unique_ptr<HonestServer> live_;
  std::vector<Update> pending_;
  std::shared_ptr<const StreamSnapshot> published_;
  StreamCounters counters_;
  uint64_t epoch_ = 0;
  bool frozen_ = false;
};

}  // namespace qpwm

#endif  // QPWM_STREAM_STREAM_SERVER_H_
