// Hand-rolled XML parser: elements, attributes, text, comments, the XML
// declaration, and the five predefined entities. Whitespace-only text
// between elements is dropped (document-centric XML, as in the paper's
// Example 4). Errors carry byte offsets.
#ifndef QPWM_XML_PARSER_H_
#define QPWM_XML_PARSER_H_

#include <string_view>

#include "qpwm/util/status.h"
#include "qpwm/xml/dom.h"

namespace qpwm {

/// Parses an XML document.
Result<XmlDocument> ParseXml(std::string_view input);

/// Parses, aborting on error — for documents embedded in code.
XmlDocument MustParseXml(std::string_view input);

}  // namespace qpwm

#endif  // QPWM_XML_PARSER_H_
