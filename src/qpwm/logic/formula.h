// First-order / monadic second-order formula AST over a relational signature.
//
// First-order variables range over universe elements; set variables (MSO)
// range over sets of elements. Implication and equivalence are desugared by
// the parser, so the AST keeps only the core connectives.
#ifndef QPWM_LOGIC_FORMULA_H_
#define QPWM_LOGIC_FORMULA_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace qpwm {

enum class FormulaKind {
  kAtom,       // R(x1, ..., xr)
  kEq,         // x = y
  kSetMember,  // x in X
  kNot,
  kAnd,
  kOr,
  kExists,     // exists x phi
  kForall,     // forall x phi
  kExistsSet,  // existsset X phi
  kForallSet,  // forallset X phi
};

/// One AST node. Build with the factory functions below; nodes own their
/// children.
struct Formula {
  FormulaKind kind;

  std::string relation;            // kAtom: relation name
  std::vector<std::string> vars;   // kAtom args; kEq {x, y}; kSetMember {x}
  std::string set_var;             // kSetMember / set quantifiers
  std::string quantified_var;      // kExists / kForall

  std::unique_ptr<Formula> left;   // kNot / quantifier body; kAnd/kOr lhs
  std::unique_ptr<Formula> right;  // kAnd / kOr rhs

  std::unique_ptr<Formula> Clone() const;
  std::string ToString() const;

  /// Free first-order variables, sorted.
  std::set<std::string> FreeVars() const;
  /// Free set variables, sorted.
  std::set<std::string> FreeSetVars() const;

  /// Maximum quantifier nesting depth (first-order and set quantifiers).
  uint32_t QuantifierRank() const;
};

using FormulaPtr = std::unique_ptr<Formula>;

FormulaPtr MakeAtom(std::string relation, std::vector<std::string> vars);
FormulaPtr MakeEq(std::string x, std::string y);
FormulaPtr MakeSetMember(std::string x, std::string set_var);
FormulaPtr MakeNot(FormulaPtr f);
FormulaPtr MakeAnd(FormulaPtr a, FormulaPtr b);
FormulaPtr MakeOr(FormulaPtr a, FormulaPtr b);
FormulaPtr MakeExists(std::string var, FormulaPtr body);
FormulaPtr MakeForall(std::string var, FormulaPtr body);
FormulaPtr MakeExistsSet(std::string set_var, FormulaPtr body);
FormulaPtr MakeForallSet(std::string set_var, FormulaPtr body);

/// True if the formula uses no set quantifier and no set membership.
bool IsFirstOrder(const Formula& f);

}  // namespace qpwm

#endif  // QPWM_LOGIC_FORMULA_H_
