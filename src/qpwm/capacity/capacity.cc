#include "qpwm/capacity/capacity.h"

#include <algorithm>
#include <bit>

#include "qpwm/util/check.h"

namespace qpwm {
namespace {

// Shared DFS counter. `exact` selects drift == d versus |drift| <= d.
class Counter {
 public:
  Counter(const MarkCountProblem& problem, int64_t d, bool exact)
      : problem_(problem), d_(d), exact_(exact) {
    QPWM_CHECK(!problem.moves.empty());
    min_move_ = *std::min_element(problem.moves.begin(), problem.moves.end());
    max_move_ = *std::max_element(problem.moves.begin(), problem.moves.end());
    in_sets_.resize(problem.num_elements);
    for (size_t a = 0; a < problem_.sets.size(); ++a) {
      for (uint32_t e : problem_.sets[a]) {
        QPWM_CHECK_LT(e, problem.num_elements);
        in_sets_[e].push_back(static_cast<uint32_t>(a));
      }
    }
    sum_.assign(problem_.sets.size(), 0);
    remaining_.resize(problem_.sets.size());
    for (size_t a = 0; a < problem_.sets.size(); ++a) {
      remaining_[a] = static_cast<int64_t>(problem_.sets[a].size());
    }
  }

  uint64_t Run() {
    // Constraints must be satisfiable before any assignment — in particular
    // an *empty* set (a parameter whose answer has no perturbable element)
    // pins its drift to 0 forever.
    for (size_t a = 0; a < problem_.sets.size(); ++a) {
      if (remaining_[a] == 0 ? !Closed(a) : !Feasible(a)) return 0;
    }
    return Dfs(0);
  }

 private:
  bool Feasible(size_t a) const {
    const int64_t lo = sum_[a] + remaining_[a] * min_move_;
    const int64_t hi = sum_[a] + remaining_[a] * max_move_;
    if (exact_) return lo <= d_ && d_ <= hi;
    // |drift| <= d: the reachable interval must intersect [-d, d].
    return lo <= d_ && hi >= -d_;
  }

  bool Closed(size_t a) const {
    if (exact_) return sum_[a] == d_;
    return sum_[a] >= -d_ && sum_[a] <= d_;
  }

  uint64_t Dfs(uint32_t element) {
    if (element == problem_.num_elements) return 1;
    uint64_t total = 0;
    for (int32_t move : problem_.moves) {
      bool ok = true;
      for (uint32_t a : in_sets_[element]) {
        sum_[a] += move;
        --remaining_[a];
      }
      for (uint32_t a : in_sets_[element]) {
        if (remaining_[a] == 0 ? !Closed(a) : !Feasible(a)) {
          ok = false;
          break;
        }
      }
      if (ok) total += Dfs(element + 1);
      for (uint32_t a : in_sets_[element]) {
        sum_[a] -= move;
        ++remaining_[a];
      }
    }
    return total;
  }

  const MarkCountProblem& problem_;
  const int64_t d_;
  const bool exact_;
  int64_t min_move_ = 0;
  int64_t max_move_ = 0;
  std::vector<std::vector<uint32_t>> in_sets_;
  std::vector<int64_t> sum_;
  std::vector<int64_t> remaining_;
};

}  // namespace

MarkCountProblem ProblemFromQuery(const QueryIndex& index) {
  MarkCountProblem out;
  out.num_elements = index.num_active();
  out.sets.reserve(index.num_params());
  for (size_t i = 0; i < index.num_params(); ++i) {
    if (!index.ResultFor(i).empty()) out.sets.push_back(index.ResultFor(i));
  }
  return out;
}

uint64_t CountMarkingsExact(const MarkCountProblem& problem, int64_t d) {
  return Counter(problem, d, /*exact=*/true).Run();
}

uint64_t CountMarkingsAtMost(const MarkCountProblem& problem, int64_t d) {
  return Counter(problem, d, /*exact=*/false).Run();
}

uint64_t Permanent01(const std::vector<std::vector<uint8_t>>& matrix) {
  const size_t n = matrix.size();
  QPWM_CHECK_LE(n, 30u);
  if (n == 0) return 1;
  for (const auto& row : matrix) QPWM_CHECK_EQ(row.size(), n);

  // Ryser with Gray-code subset enumeration over columns.
  // perm = (-1)^n * sum_S (-1)^{|S|} prod_i (sum_{j in S} a_ij)
  std::vector<int64_t> row_sum(n, 0);
  int64_t total = 0;
  uint32_t prev = 0;
  for (uint64_t k = 1; k < (uint64_t{1} << n); ++k) {
    uint32_t gray = static_cast<uint32_t>(k ^ (k >> 1));
    uint32_t changed_bit = gray ^ prev;
    int col = std::countr_zero(changed_bit);
    int sign_add = (gray & changed_bit) ? 1 : -1;
    for (size_t i = 0; i < n; ++i) row_sum[i] += sign_add * matrix[i][col];
    prev = gray;

    int64_t prod = 1;
    for (size_t i = 0; i < n && prod != 0; ++i) prod *= row_sum[i];
    int parity = (static_cast<size_t>(std::popcount(gray)) % 2 == n % 2) ? 1 : -1;
    total += parity * prod;
  }
  QPWM_CHECK_GE(total, 0);
  return static_cast<uint64_t>(total);
}

MarkCountProblem PermanentReduction(const std::vector<std::vector<uint8_t>>& matrix) {
  const size_t n = matrix.size();
  // Elements = edges; one constraint set per vertex (rows and columns):
  // drift exactly 1 with moves {0, +1} forces one chosen edge per vertex —
  // chosen edge sets are exactly the perfect matchings.
  MarkCountProblem out;
  out.moves = {0, +1};
  std::vector<std::vector<uint32_t>> row_sets(n), col_sets(n);
  uint32_t edge = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (matrix[i][j]) {
        row_sets[i].push_back(edge);
        col_sets[j].push_back(edge);
        ++edge;
      }
    }
  }
  out.num_elements = edge;
  for (auto& s : row_sets) out.sets.push_back(std::move(s));
  for (auto& s : col_sets) out.sets.push_back(std::move(s));
  return out;
}

}  // namespace qpwm
