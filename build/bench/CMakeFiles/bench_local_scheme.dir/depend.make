# Empty dependencies file for bench_local_scheme.
# This may be replaced when dependencies are built.
