# Empty dependencies file for structural_attack_test.
# This may be replaced when dependencies are built.
