// Fixture: parallel-mutation — a ParallelFor body writing state declared
// outside the lambda. Never compiled, only linted.
#include <vector>

int Tally(const std::vector<int>& xs) {
  int total = 0;
  ParallelFor(xs.size(), [&](size_t i) {
    total += xs[i];
  });
  return total;
}
