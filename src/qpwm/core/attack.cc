#include "qpwm/core/attack.h"

#include <algorithm>

namespace qpwm {

WeightMap UniformNoiseAttack(const WeightMap& marked, Weight c, Rng& rng) {
  WeightMap out = marked;
  marked.ForEach([&](const Tuple& t, Weight w) {
    out.Set(t, w + rng.Uniform(-c, c));
  });
  return out;
}

WeightMap JitterAttack(const WeightMap& marked, double flip_prob, Rng& rng) {
  WeightMap out = marked;
  marked.ForEach([&](const Tuple& t, Weight w) {
    if (rng.Bernoulli(flip_prob)) out.Set(t, w + (rng.Coin() ? 1 : -1));
  });
  return out;
}

WeightMap RoundingAttack(const WeightMap& marked, Weight granularity) {
  QPWM_CHECK_GE(granularity, 1);
  WeightMap out = marked;
  marked.ForEach([&](const Tuple& t, Weight w) {
    Weight down = (w >= 0 ? w : w - granularity + 1) / granularity * granularity;
    Weight up = down + granularity;
    out.Set(t, (w - down <= up - w) ? down : up);
  });
  return out;
}

WeightMap GuessingPairAttack(const WeightMap& marked, const QueryIndex& index,
                             size_t guesses, Rng& rng) {
  WeightMap out = marked;
  const size_t n = index.num_active();
  if (n < 2) return out;
  for (size_t i = 0; i < guesses; ++i) {
    size_t a = rng.Below(n);
    size_t b = rng.Below(n);
    if (a == b) continue;
    // Attacker's guess at undoing a (+1, -1) pair.
    out.Add(index.active_element(a), -1);
    out.Add(index.active_element(b), +1);
  }
  return out;
}

Status CheckCollusionCopies(const std::vector<const WeightMap*>& copies) {
  if (copies.empty()) {
    return Status::InvalidArgument("collusion needs at least one copy");
  }
  for (size_t i = 1; i < copies.size(); ++i) {
    if (!copies[0]->SameDomain(*copies[i])) {
      return Status::InvalidArgument(
          "collusion copies cover different weight domains");
    }
  }
  return Status::OK();
}

Result<WeightMap> CollusionAttack::Forge(
    const std::vector<const WeightMap*>& copies, Rng& rng) const {
  QPWM_RETURN_NOT_OK(CheckCollusionCopies(copies));
  return ForgeValid(copies, rng);
}

WeightMap AveragingCollusion::ForgeValid(
    const std::vector<const WeightMap*>& copies, Rng&) const {
  WeightMap out = *copies[0];
  out.ForEach([&](const Tuple& t, Weight) {
    Weight sum = 0;
    for (const WeightMap* copy : copies) sum += copy->Get(t);
    const auto n = static_cast<Weight>(copies.size());
    // Round half toward the first copy's value.
    Weight rounded = sum >= 0 ? (2 * sum + n) / (2 * n) : -((-2 * sum + n) / (2 * n));
    out.Set(t, rounded);
  });
  return out;
}

WeightMap MedianCollusion::ForgeValid(
    const std::vector<const WeightMap*>& copies, Rng&) const {
  WeightMap out = *copies[0];
  std::vector<Weight> values(copies.size());
  out.ForEach([&](const Tuple& t, Weight) {
    for (size_t i = 0; i < copies.size(); ++i) values[i] = copies[i]->Get(t);
    std::sort(values.begin(), values.end());
    // Lower median: deterministic for even counts.
    out.Set(t, values[(values.size() - 1) / 2]);
  });
  return out;
}

WeightMap MinMaxCollusion::ForgeValid(
    const std::vector<const WeightMap*>& copies, Rng& rng) const {
  WeightMap out = *copies[0];
  out.ForEach([&](const Tuple& t, Weight) {
    Weight lo = copies[0]->Get(t);
    Weight hi = lo;
    for (size_t i = 1; i < copies.size(); ++i) {
      const Weight w = copies[i]->Get(t);
      lo = std::min(lo, w);
      hi = std::max(hi, w);
    }
    out.Set(t, rng.Coin() ? hi : lo);
  });
  return out;
}

InterleavingCollusion::InterleavingCollusion(size_t segment_len)
    : segment_len_(segment_len) {
  QPWM_CHECK_GE(segment_len_, 1u);
}

std::string InterleavingCollusion::Name() const {
  return "interleave:" + std::to_string(segment_len_);
}

WeightMap InterleavingCollusion::ForgeValid(
    const std::vector<const WeightMap*>& copies, Rng& rng) const {
  WeightMap out = *copies[0];
  // ForEach visits the domain in its deterministic order, so segments are
  // encountered (and their owners drawn) in a fixed sequence: one Below()
  // draw per segment, replayable from the rng seed alone.
  size_t pos = 0;
  size_t owner = 0;
  out.ForEach([&](const Tuple& t, Weight) {
    if (pos % segment_len_ == 0) {
      owner = static_cast<size_t>(rng.Below(copies.size()));
    }
    ++pos;
    out.Set(t, copies[owner]->Get(t));
  });
  return out;
}

const std::vector<std::string>& KnownCollusionSpecs() {
  static const std::vector<std::string> kSpecs = {"averaging", "median",
                                                  "minmax", "interleave"};
  return kSpecs;
}

Result<std::unique_ptr<CollusionAttack>> MakeCollusionAttack(
    const std::string& spec) {
  if (spec == "averaging") {
    return std::unique_ptr<CollusionAttack>(new AveragingCollusion());
  }
  if (spec == "median") {
    return std::unique_ptr<CollusionAttack>(new MedianCollusion());
  }
  if (spec == "minmax") {
    return std::unique_ptr<CollusionAttack>(new MinMaxCollusion());
  }
  const std::string kInterleave = "interleave";
  if (spec.rfind(kInterleave, 0) == 0) {
    size_t segment_len = 64;
    if (spec.size() > kInterleave.size()) {
      if (spec[kInterleave.size()] != ':') {
        return Status::InvalidArgument("unknown collusion attack: " + spec);
      }
      const std::string len = spec.substr(kInterleave.size() + 1);
      segment_len = 0;
      for (char c : len) {
        if (c < '0' || c > '9') {
          return Status::InvalidArgument("bad interleave segment length: " + spec);
        }
        segment_len = segment_len * 10 + static_cast<size_t>(c - '0');
        if (segment_len > 1u << 20) break;
      }
      if (segment_len < 1 || segment_len > 1u << 20) {
        return Status::InvalidArgument("bad interleave segment length: " + spec);
      }
    }
    return std::unique_ptr<CollusionAttack>(new InterleavingCollusion(segment_len));
  }
  return Status::InvalidArgument("unknown collusion attack: " + spec);
}

Result<WeightMap> AveragingCollusionAttack(
    const std::vector<const WeightMap*>& copies) {
  Rng rng(kDefaultAttackSeed);
  return AveragingCollusion().Forge(copies, rng);
}

Result<WeightMap> MedianCollusionAttack(
    const std::vector<const WeightMap*>& copies) {
  Rng rng(kDefaultAttackSeed);
  return MedianCollusion().Forge(copies, rng);
}

Result<WeightMap> MinMaxCollusionAttack(const std::vector<const WeightMap*>& copies,
                                        Rng& rng) {
  return MinMaxCollusion().Forge(copies, rng);
}

void TamperedAnswerServer::Tamper(const Tuple& params, AnswerSet& rows) const {
  if (!erased_.empty()) {
    rows.erase(std::remove_if(rows.begin(), rows.end(),
                              [&](const AnswerRow& row) {
                                return erased_.count(row.element) != 0;
                              }),
               rows.end());
  }
  auto it = inserted_at_.find(params);
  if (it != inserted_at_.end()) {
    rows.insert(rows.end(), it->second.begin(), it->second.end());
  }
  rows.insert(rows.end(), inserted_everywhere_.begin(), inserted_everywhere_.end());
}

AnswerSet TamperedAnswerServer::Answer(const Tuple& params) const {
  AnswerSet out = base_->Answer(params);
  Tamper(params, out);
  return out;
}

std::vector<AnswerSet> TamperedAnswerServer::AnswerBatch(
    const std::vector<Tuple>& params) const {
  std::vector<AnswerSet> out = AnswerAll(*base_, params);
  for (size_t i = 0; i < params.size(); ++i) Tamper(params[i], out[i]);
  return out;
}

std::vector<Tuple> SampleSubset(const std::vector<Tuple>& elements, double frac,
                                Rng& rng) {
  // qpwm-lint: allow(legacy-tuple-vector) — cold adversary path assembling a sampled subset
  std::vector<Tuple> out;
  for (const Tuple& t : elements) {
    if (rng.Bernoulli(frac)) out.push_back(t);
  }
  return out;
}

std::vector<Tuple> SubsetDeletionAttack(const QueryIndex& index, double drop_frac,
                                        Rng& rng) {
  // qpwm-lint: allow(legacy-tuple-vector) — cold adversary path materializing deletion candidates
  std::vector<Tuple> elements;
  elements.reserve(index.num_active());
  for (size_t w = 0; w < index.num_active(); ++w) {
    elements.push_back(index.active_element(w));
  }
  return SampleSubset(elements, drop_frac, rng);
}

std::vector<FakeTuplePlacement> MakeFakeTupleRows(const QueryIndex& index,
                                                  const WeightMap& marked,
                                                  size_t count, Rng& rng) {
  std::vector<FakeTuplePlacement> out;
  if (index.num_params() == 0) return out;
  // Plausible weight range: the marked map's observed min..max.
  Weight lo = 0, hi = 0;
  bool first = true;
  marked.ForEach([&](const Tuple&, Weight w) {
    if (first) {
      lo = hi = w;
      first = false;
    } else {
      lo = std::min(lo, w);
      hi = std::max(hi, w);
    }
  });
  const ElemId fresh_base =
      static_cast<ElemId>(index.structure().universe_size());
  const uint32_t s = marked.s();
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Tuple fresh(s, fresh_base + static_cast<ElemId>(i));
    AnswerRow row{std::move(fresh), rng.Uniform(lo, hi)};
    out.push_back({static_cast<size_t>(rng.Below(index.num_params())),
                   std::move(row)});
  }
  return out;
}

void TupleInsertionAttack(TamperedAnswerServer& server, const QueryIndex& index,
                          const WeightMap& marked, size_t count, Rng& rng) {
  for (FakeTuplePlacement& p : MakeFakeTupleRows(index, marked, count, rng)) {
    server.InsertAt(index.param(p.param_idx), std::move(p.row));
  }
}

std::vector<Tuple> PairRegionDeletionAttack(const QueryIndex& index,
                                            const std::vector<WeightPair>& pairs,
                                            size_t redundancy, double region_frac,
                                            Rng& rng) {
  QPWM_CHECK_GE(redundancy, 1u);
  // qpwm-lint: allow(legacy-tuple-vector) — cold adversary path assembling the deletion set
  std::vector<Tuple> out;
  const size_t groups = pairs.size() / redundancy;
  if (groups == 0 || region_frac <= 0) return out;
  const size_t burst = std::min(
      groups, static_cast<size_t>(region_frac * static_cast<double>(groups) + 0.5));
  if (burst == 0) return out;
  const size_t start = static_cast<size_t>(rng.Below(groups - burst + 1));
  std::unordered_set<uint32_t> doomed;
  for (size_t g = start; g < start + burst; ++g) {
    for (size_t k = 0; k < redundancy; ++k) {
      const WeightPair& pair = pairs[g * redundancy + k];
      doomed.insert(pair.plus);
      doomed.insert(pair.minus);
    }
  }
  out.reserve(doomed.size());
  // qpwm-lint: allow(unordered-iter) -- drained fully; sorted just below
  for (uint32_t w : doomed) out.push_back(index.active_element(w));
  // Deterministic output order regardless of hash-set iteration.
  std::sort(out.begin(), out.end());
  return out;
}

ComposedSuspect ApplyComposedAttack(const QueryIndex& index,
                                    const std::vector<WeightPair>& pairs,
                                    size_t redundancy, const WeightMap& marked,
                                    const ComposedAttackSpec& spec) {
  Rng rng(spec.seed);
  ComposedSuspect out;
  out.seed = spec.seed;

  // Value tier: noise, jitter, rounding — in spec order, each optional.
  WeightMap weights = marked;
  if (spec.noise > 0) weights = UniformNoiseAttack(weights, spec.noise, rng);
  if (spec.jitter_prob > 0) weights = JitterAttack(weights, spec.jitter_prob, rng);
  if (spec.rounding > 0) weights = RoundingAttack(weights, spec.rounding);

  out.base = std::make_unique<HonestServer>(index, std::move(weights));
  out.server = std::make_unique<TamperedAnswerServer>(*out.base);

  // Structural tier: burst first (it models one correlated loss event),
  // then independent deletion, then insertion.
  if (spec.region_frac > 0) {
    for (const Tuple& t :
         PairRegionDeletionAttack(index, pairs, redundancy, spec.region_frac, rng)) {
      out.server->Erase(t);
    }
  }
  if (spec.deletion_frac > 0) {
    for (const Tuple& t : SubsetDeletionAttack(index, spec.deletion_frac, rng)) {
      out.server->Erase(t);
    }
  }
  out.elements_erased = out.server->num_erased();
  if (spec.insertion_frac > 0) {
    out.rows_inserted = static_cast<size_t>(
        spec.insertion_frac * static_cast<double>(index.num_active()));
    TupleInsertionAttack(*out.server, index, out.base->weights(),
                         out.rows_inserted, rng);
  }
  return out;
}

}  // namespace qpwm
