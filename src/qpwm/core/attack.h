// Attacker models for the adversarial setting. Two tiers:
//
// Tier 1 (Fact 1's assumptions): bounded-distortion weight tampering by a
// malicious server that does not know the secret pair positions (limited
// knowledge). These attacks transform a weight map and leave the structure
// alone.
//
// Tier 2 (structural attacks, beyond Fact 1): the attacker deletes tuples,
// drops subtrees, ships a subset, or inserts fresh rows. These attacks
// transform the *served answers* — deleted elements vanish from every answer,
// inserted rows show up where the attacker planted them. Detection must treat
// missing pair elements as erasures (see PairObservation) and degrade
// gracefully instead of failing outright.
#ifndef QPWM_CORE_ATTACK_H_
#define QPWM_CORE_ATTACK_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "qpwm/core/answers.h"
#include "qpwm/structure/weighted.h"
#include "qpwm/util/random.h"
#include "qpwm/util/status.h"

namespace qpwm {

// --- Tier 1: weight tampering ----------------------------------------------

/// Adds an independent uniform integer in [-c, c] to every weight.
/// Realizes a c'-local distortion; the induced global distortion is measured
/// by the caller.
WeightMap UniformNoiseAttack(const WeightMap& marked, Weight c, Rng& rng);

/// Flips each weight by +-1 with probability `flip_prob` (random bit-jitter,
/// the closest analogue of LSB-resetting attacks on [1]).
WeightMap JitterAttack(const WeightMap& marked, double flip_prob, Rng& rng);

/// Rounds every weight to the nearest multiple of `granularity` (>= 1) —
/// a deterministic "cleaning" attack. Ties round down.
WeightMap RoundingAttack(const WeightMap& marked, Weight granularity);

/// Guessing attack: the attacker picks `guesses` random element pairs and
/// applies the inverse (+1, -1) trick hoping to hit the owner's pairs. With
/// limited knowledge the hit probability per guess is ~ 1 / |W|^2.
WeightMap GuessingPairAttack(const WeightMap& marked, const QueryIndex& index,
                             size_t guesses, Rng& rng);

/// Collusion: servers holding several differently-marked copies average them
/// per weight (rounding toward the first copy on ties). With enough copies
/// the pair deltas wash out — the auto-collusion risk Section 5 raises
/// against naive re-marking after updates. All copies must cover the same
/// weight domain; mismatched domains (e.g. copies of different subsets) are
/// rejected with kInvalidArgument instead of silently averaging garbage.
Result<WeightMap> AveragingCollusionAttack(const std::vector<const WeightMap*>& copies);

// --- Tier 2: structural attacks --------------------------------------------

/// A suspect server whose data was structurally tampered with: erased
/// elements vanish from every answer, inserted rows are appended to the
/// answers the attacker planted them in. The paper's indirect-access threat
/// model is preserved — detection still only sees answers. The base server
/// must outlive the wrapper. Batch requests are forwarded to the base as a
/// batch (AnswerAll) and tampered per answer, so a batching base keeps its
/// amortization under attack.
class TamperedAnswerServer : public BatchAnswerServer {
 public:
  explicit TamperedAnswerServer(const AnswerServer& base) : base_(&base) {}

  /// Removes `element` from every answer (tuple deletion / subset shipping).
  void Erase(const Tuple& element) { erased_.insert(element); }

  /// Appends `row` to the answer of parameter `param` only.
  void InsertAt(const Tuple& param, AnswerRow row) {
    inserted_at_[param].push_back(std::move(row));
  }

  /// Appends `row` to every answer (an inserted tuple matching all queries).
  void InsertEverywhere(AnswerRow row) {
    inserted_everywhere_.push_back(std::move(row));
  }

  size_t num_erased() const { return erased_.size(); }

  AnswerSet Answer(const Tuple& params) const override;
  std::vector<AnswerSet> AnswerBatch(const std::vector<Tuple>& params) const override;

 private:
  /// Applies erasures and insertions for `params` to base rows, in place.
  void Tamper(const Tuple& params, AnswerSet& rows) const;

  const AnswerServer* base_;
  std::unordered_set<Tuple, TupleHash> erased_;
  std::unordered_map<Tuple, AnswerSet, TupleHash> inserted_at_;
  AnswerSet inserted_everywhere_;
};

/// Picks each element independently with probability `frac` (the generic
/// sampling step behind the deletion attacks).
std::vector<Tuple> SampleSubset(const std::vector<Tuple>& elements, double frac,
                                Rng& rng);

/// Subset-deletion attack: each active weighted element of the index is
/// deleted independently with probability `drop_frac`. Returns the deleted
/// element tuples; feed them into TamperedAnswerServer::Erase.
std::vector<Tuple> SubsetDeletionAttack(const QueryIndex& index, double drop_frac,
                                        Rng& rng);

/// Tuple-insertion attack: plants `count` fresh rows with plausible weights
/// (uniform over the marked map's observed min..max range) into randomly
/// chosen parameters' answers. Fresh elements use ids beyond the original
/// universe so they mimic genuinely new rows (new keys).
void TupleInsertionAttack(TamperedAnswerServer& server, const QueryIndex& index,
                          const WeightMap& marked, size_t count, Rng& rng);

}  // namespace qpwm

#endif  // QPWM_CORE_ATTACK_H_
