# Empty dependencies file for conjunctive_test.
# This may be replaced when dependencies are built.
