#include <gtest/gtest.h>

#include "qpwm/core/distortion.h"
#include "qpwm/core/local_scheme.h"
#include "qpwm/logic/query.h"
#include "qpwm/structure/generators.h"
#include "qpwm/util/random.h"

namespace qpwm {
namespace {

LocalSchemeOptions DefaultOptions(double epsilon = 0.5) {
  LocalSchemeOptions o;
  o.epsilon = epsilon;
  o.key = {0xFEED, 0xBEEF};
  return o;
}

BitVec RandomMark(size_t bits, Rng& rng) {
  BitVec m(bits);
  for (size_t i = 0; i < bits; ++i) m.Set(i, rng.Coin());
  return m;
}

TEST(LocalSchemeTest, PlanOnFigure1) {
  Structure g = Figure1Instance();
  auto query = AtomQuery::Adjacency("R");
  QueryIndex index(g, *query, AllParams(g, 1));
  auto scheme = LocalScheme::Plan(index, DefaultOptions(1.0)).ValueOrDie();
  EXPECT_EQ(scheme.NumTypes(), 3u);  // the paper's three neighborhood types
  EXPECT_GE(scheme.CapacityBits(), 1u);
  EXPECT_LE(scheme.DistortionBound(), scheme.Budget());
}

TEST(LocalSchemeTest, EmbedDetectRoundTripAllMarks) {
  Structure g = Figure1Instance();
  auto query = AtomQuery::Adjacency("R");
  QueryIndex index(g, *query, AllParams(g, 1));
  WeightMap w(1, 6);
  for (ElemId e = 0; e < 6; ++e) w.SetElem(e, 50 + e);

  auto scheme = LocalScheme::Plan(index, DefaultOptions(1.0)).ValueOrDie();
  const size_t bits = scheme.CapacityBits();
  ASSERT_GE(bits, 1u);
  ASSERT_LE(bits, 10u);
  for (uint64_t m = 0; m < (uint64_t{1} << bits); ++m) {
    BitVec mark = BitVec::FromUint64(m, bits);
    WeightMap marked = scheme.Embed(w, mark);
    EXPECT_TRUE(SatisfiesLocalDistortion(w, marked, 1));
    EXPECT_LE(GlobalDistortion(index, w, marked),
              static_cast<Weight>(scheme.Budget()));
    HonestServer server(index, marked);
    BitVec detected = scheme.Detect(w, server).ValueOrDie();
    EXPECT_EQ(detected, mark) << "mark " << m;
  }
}

class LocalSchemeSweepTest : public ::testing::TestWithParam<std::tuple<size_t, double>> {
};

TEST_P(LocalSchemeSweepTest, RoundTripOnBoundedDegreeGraphs) {
  auto [n, epsilon] = GetParam();
  Rng rng(n * 1000 + static_cast<uint64_t>(epsilon * 100));
  Structure g = RandomBoundedDegreeGraph(n, 3, 3 * n, false, rng);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));
  WeightMap w = RandomWeights(g, 100, 999, rng);

  auto scheme = LocalScheme::Plan(index, DefaultOptions(epsilon)).ValueOrDie();
  ASSERT_GT(scheme.CapacityBits(), 0u);
  EXPECT_LE(scheme.DistortionBound(), scheme.Budget());

  BitVec mark = RandomMark(scheme.CapacityBits(), rng);
  WeightMap marked = scheme.Embed(w, mark);
  EXPECT_TRUE(SatisfiesLocalDistortion(w, marked, 1));
  EXPECT_LE(GlobalDistortion(index, w, marked), static_cast<Weight>(scheme.Budget()));

  HonestServer server(index, marked);
  EXPECT_EQ(scheme.Detect(w, server).ValueOrDie(), mark);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LocalSchemeSweepTest,
    ::testing::Combine(::testing::Values(size_t{40}, size_t{120}, size_t{400}),
                       ::testing::Values(1.0, 0.5, 0.25)));

TEST(LocalSchemeTest, DetectorReplansIdentically) {
  // The detector side replans from the same inputs and key; pair sets must
  // agree exactly.
  Rng rng(77);
  Structure g = RandomBoundedDegreeGraph(100, 3, 250, false, rng);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));
  auto s1 = LocalScheme::Plan(index, DefaultOptions()).ValueOrDie();
  auto s2 = LocalScheme::Plan(index, DefaultOptions()).ValueOrDie();
  ASSERT_EQ(s1.CapacityBits(), s2.CapacityBits());
  for (size_t i = 0; i < s1.marking().size(); ++i) {
    EXPECT_EQ(s1.marking().pairs()[i].plus, s2.marking().pairs()[i].plus);
    EXPECT_EQ(s1.marking().pairs()[i].minus, s2.marking().pairs()[i].minus);
  }
}

TEST(LocalSchemeTest, DifferentKeysDifferentPairs) {
  Rng rng(78);
  Structure g = RandomBoundedDegreeGraph(120, 3, 300, false, rng);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));
  LocalSchemeOptions o1 = DefaultOptions(), o2 = DefaultOptions();
  o2.key = {123, 321};
  auto s1 = LocalScheme::Plan(index, o1).ValueOrDie();
  auto s2 = LocalScheme::Plan(index, o2).ValueOrDie();
  bool differ = s1.CapacityBits() != s2.CapacityBits();
  for (size_t i = 0; !differ && i < s1.marking().size() && i < s2.marking().size();
       ++i) {
    differ = s1.marking().pairs()[i].plus != s2.marking().pairs()[i].plus;
  }
  EXPECT_TRUE(differ);
}

TEST(LocalSchemeTest, GreedySelectionRespectsBudget) {
  Rng rng(79);
  Structure g = RandomBoundedDegreeGraph(200, 4, 600, false, rng);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));
  LocalSchemeOptions opts = DefaultOptions(0.34);  // budget 3
  opts.selection = PairSelection::kGreedy;
  auto scheme = LocalScheme::Plan(index, opts).ValueOrDie();
  EXPECT_LE(scheme.DistortionBound(), 3u);
  EXPECT_GT(scheme.CapacityBits(), 0u);
}

TEST(LocalSchemeTest, GreedyCapacityAtLeastRandom) {
  Rng rng(80);
  Structure g = RandomBoundedDegreeGraph(300, 3, 800, false, rng);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));
  LocalSchemeOptions random_opts = DefaultOptions(0.5);
  LocalSchemeOptions greedy_opts = DefaultOptions(0.5);
  greedy_opts.selection = PairSelection::kGreedy;
  auto random_scheme = LocalScheme::Plan(index, random_opts).ValueOrDie();
  auto greedy_scheme = LocalScheme::Plan(index, greedy_opts).ValueOrDie();
  EXPECT_GE(greedy_scheme.CapacityBits(), random_scheme.CapacityBits());
}

TEST(LocalSchemeTest, ClassPairingAblation) {
  Rng rng(81);
  Structure g = RandomBoundedDegreeGraph(200, 3, 500, false, rng);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));
  LocalSchemeOptions with = DefaultOptions();
  LocalSchemeOptions without = DefaultOptions();
  without.class_pairing = false;
  auto s_with = LocalScheme::Plan(index, with).ValueOrDie();
  auto s_without = LocalScheme::Plan(index, without).ValueOrDie();
  // Both must respect the budget; class pairing should not hurt capacity.
  EXPECT_LE(s_with.DistortionBound(), s_with.Budget());
  EXPECT_LE(s_without.DistortionBound(), s_without.Budget());
}

TEST(LocalSchemeTest, InvalidEpsilonRejected) {
  Structure g = Figure1Instance();
  auto query = AtomQuery::Adjacency("R");
  QueryIndex index(g, *query, AllParams(g, 1));
  LocalSchemeOptions opts = DefaultOptions();
  opts.epsilon = 0.0;
  EXPECT_FALSE(LocalScheme::Plan(index, opts).ok());
  opts.epsilon = 1.5;
  EXPECT_FALSE(LocalScheme::Plan(index, opts).ok());
}

TEST(LocalSchemeTest, DistanceQueryPreserved) {
  Rng rng(82);
  Structure g = RandomBoundedDegreeGraph(150, 3, 400, true, rng);
  DistanceQuery query(2);
  QueryIndex index(g, query, AllParams(g, 1));
  WeightMap w = RandomWeights(g, 10, 99, rng);
  LocalSchemeOptions opts = DefaultOptions(0.5);
  opts.rho = 2;
  auto scheme = LocalScheme::Plan(index, opts).ValueOrDie();
  if (scheme.CapacityBits() == 0) GTEST_SKIP() << "no capacity on this instance";
  BitVec mark = RandomMark(scheme.CapacityBits(), rng);
  WeightMap marked = scheme.Embed(w, mark);
  EXPECT_LE(GlobalDistortion(index, w, marked), static_cast<Weight>(scheme.Budget()));
  HonestServer server(index, marked);
  EXPECT_EQ(scheme.Detect(w, server).ValueOrDie(), mark);
}

TEST(LocalSchemeTest, Proposition1ZeroDistortionOnCanonicalParams) {
  // Proposition 1: an S-partition pair marking induces *exactly zero*
  // distortion on every canonical parameter. Verified over all marks with
  // fallback (cross-class) pairing disabled.
  Rng rng(84);
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Structure g = RandomBoundedDegreeGraph(80, 3, 200, false, rng);
    auto query = AtomQuery::Adjacency("E");
    QueryIndex index(g, *query, AllParams(g, 1));
    WeightMap w = RandomWeights(g, 100, 999, rng);

    LocalSchemeOptions opts = DefaultOptions(1.0);
    opts.key = {seed, seed + 5};
    opts.fallback_pairing = false;  // pure S-partition pairs only
    auto scheme = LocalScheme::Plan(index, opts).ValueOrDie();
    if (scheme.CapacityBits() == 0) continue;

    const size_t bits = std::min<size_t>(scheme.CapacityBits(), 6);
    for (uint64_t m = 0; m < (uint64_t{1} << bits); ++m) {
      BitVec mark(scheme.CapacityBits());
      for (size_t i = 0; i < bits; ++i) mark.Set(i, (m >> i) & 1);
      WeightMap marked = scheme.Embed(w, mark);
      for (size_t rep : scheme.CanonicalParams()) {
        EXPECT_EQ(index.SumWeights(rep, w), index.SumWeights(rep, marked))
            << "canonical param " << rep << " mark " << m;
      }
    }
  }
}

TEST(LocalSchemeTest, EdgeWeightsArityTwo) {
  // Weights on 2-tuples (edges), as in weighted-graph instances: the scheme
  // machinery is weight-arity agnostic. Query: the edges leaving u.
  Rng rng(83);
  Structure g = RandomBoundedDegreeGraph(120, 3, 300, false, rng);
  CallbackQuery query(
      "out-edges", 1, 2,
      [](const Structure& s, const Tuple& params) {
        std::vector<Tuple> out;
        for (TupleRef t : s.relation("E").tuples()) {
          if (t[0] == params[0]) out.push_back(t.ToTuple());
        }
        return out;
      },
      1);
  QueryIndex index(g, query, AllParams(g, 1));
  ASSERT_GT(index.num_active(), 10u);

  WeightMap w(2, g.universe_size());
  for (TupleRef t : g.relation("E").tuples()) w.Set(t.ToTuple(), rng.Uniform(10, 99));

  LocalSchemeOptions opts = DefaultOptions(0.5);
  auto scheme = LocalScheme::Plan(index, opts).ValueOrDie();
  ASSERT_GT(scheme.CapacityBits(), 0u);

  BitVec mark = RandomMark(scheme.CapacityBits(), rng);
  WeightMap marked = scheme.Embed(w, mark);
  EXPECT_TRUE(SatisfiesLocalDistortion(w, marked, 1));
  EXPECT_LE(GlobalDistortion(index, w, marked), static_cast<Weight>(scheme.Budget()));
  HonestServer server(index, marked);
  EXPECT_EQ(scheme.Detect(w, server).ValueOrDie(), mark);
}

TEST(LocalSchemeTest, CycleInstanceZeroCostPairs) {
  // On a symmetric cycle with the adjacency query, pairing the two
  // neighbors of a vertex cancels everywhere: expect a healthy capacity at
  // the tightest budget.
  Structure g = CycleGraph(60, true);
  auto query = AtomQuery::Adjacency("E");
  QueryIndex index(g, *query, AllParams(g, 1));
  auto scheme = LocalScheme::Plan(index, DefaultOptions(1.0)).ValueOrDie();
  EXPECT_GT(scheme.CapacityBits(), 5u);
}

}  // namespace
}  // namespace qpwm
