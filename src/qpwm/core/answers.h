// Query answer machinery: the sets W_a = psi(a, G) of weighted elements a
// query touches, the active set W = union_a W_a, the answer sets
// A_a = {(b, W(b)) : b in W_a} a server returns, and the AnswerServer
// interface that models the paper's indirect-access threat model (the
// detector may only see answers, never the suspect's weight table).
#ifndef QPWM_CORE_ANSWERS_H_
#define QPWM_CORE_ANSWERS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "qpwm/logic/query.h"
#include "qpwm/structure/structure.h"
#include "qpwm/structure/weighted.h"
#include "qpwm/util/status.h"

namespace qpwm {

/// One answer row: a result tuple and its weight.
struct AnswerRow {
  Tuple element;
  Weight weight;
};

/// A_a for one parameter.
using AnswerSet = std::vector<AnswerRow>;

/// Precomputed query results over a parameter domain.
///
/// Active elements (the paper's W) are interned to dense indices; per-param
/// results and the inverse map (which params contain a given active element)
/// are both kept, since the schemes need both directions.
class QueryIndex {
 public:
  QueryIndex(const Structure& g, const ParametricQuery& query, std::vector<Tuple> domain);

  const Structure& structure() const { return *g_; }
  const ParametricQuery& query() const { return *query_; }

  size_t num_params() const { return domain_.size(); }
  const Tuple& param(size_t i) const { return domain_[i]; }
  const std::vector<Tuple>& domain() const { return domain_; }

  /// Index of a parameter tuple in the domain.
  Result<size_t> FindParam(const Tuple& params) const;

  /// |W|: number of distinct active weighted elements.
  size_t num_active() const { return active_.size(); }
  const Tuple& active_element(size_t w) const { return active_[w]; }

  /// Dense index of an s-tuple among the active elements.
  Result<size_t> FindActive(const Tuple& t) const;

  /// W_a as sorted active-element indices.
  const std::vector<uint32_t>& ResultFor(size_t param_idx) const {
    return results_[param_idx];
  }

  /// Parameters whose result set contains active element `w`.
  const std::vector<uint32_t>& ParamsContaining(size_t w) const {
    return containing_[w];
  }

  /// Membership test (binary search over the sorted result list).
  bool Contains(size_t param_idx, size_t w) const;

  /// f(a) = sum of weights over W_a under `weights`.
  Weight SumWeights(size_t param_idx, const WeightMap& weights) const;

  /// A_a under `weights`.
  AnswerSet AnswersFor(size_t param_idx, const WeightMap& weights) const;

 private:
  const Structure* g_;
  const ParametricQuery* query_;
  std::vector<Tuple> domain_;
  std::unordered_map<Tuple, uint32_t, TupleHash> param_index_;
  std::vector<Tuple> active_;
  std::unordered_map<Tuple, uint32_t, TupleHash> active_index_;
  std::vector<std::vector<uint32_t>> results_;     // param -> active indices (sorted)
  std::vector<std::vector<uint32_t>> containing_;  // active -> params (sorted)
};

/// A suspect data server: answers parametric queries, nothing else.
class AnswerServer {
 public:
  virtual ~AnswerServer() = default;
  /// Returns A_a for parameter tuple `params`.
  virtual AnswerSet Answer(const Tuple& params) const = 0;
};

/// A server honestly serving a (possibly watermarked / attacked) weight map
/// over the owner's structure.
class HonestServer : public AnswerServer {
 public:
  HonestServer(const QueryIndex& index, WeightMap weights)
      : index_(&index), weights_(std::move(weights)) {}

  AnswerSet Answer(const Tuple& params) const override;

  const WeightMap& weights() const { return weights_; }
  WeightMap& mutable_weights() { return weights_; }

 private:
  const QueryIndex* index_;
  WeightMap weights_;
};

}  // namespace qpwm

#endif  // QPWM_CORE_ANSWERS_H_
